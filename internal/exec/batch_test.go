package exec

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/query"
)

func drainBatches(t *testing.T, op BatchOperator) [][]int64 {
	t.Helper()
	var out [][]int64
	for {
		b, ok := op.NextBatch()
		if !ok {
			return out
		}
		n := b.NumRows()
		for i := 0; i < n; i++ {
			r := i
			if b.Sel != nil {
				r = int(b.Sel[i])
			}
			row := make([]int64, len(b.Cols))
			for c, col := range b.Cols {
				row[c] = col[r]
			}
			out = append(out, row)
		}
	}
}

func TestBatchScan(t *testing.T) {
	tab := data.MustNewTable("R", "x", "a")
	for i := int64(0); i < 2500; i++ {
		if err := tab.AppendRow(i, i*10); err != nil {
			t.Fatal(err)
		}
	}
	s := NewBatchScan(tab)
	if !reflect.DeepEqual(s.Columns(), []string{"R.x", "R.a"}) {
		t.Errorf("columns = %v", s.Columns())
	}
	var rows int
	var batches int
	for {
		b, ok := s.NextBatch()
		if !ok {
			break
		}
		batches++
		if b.Sel != nil {
			t.Fatal("scan batches must not carry a selection vector")
		}
		for i, v := range b.Cols[0] {
			if b.Cols[1][i] != v*10 {
				t.Fatalf("row %d: a = %d, want %d", rows+i, b.Cols[1][i], v*10)
			}
		}
		rows += b.NumRows()
	}
	if rows != 2500 {
		t.Errorf("rows = %d, want 2500", rows)
	}
	if batches != 3 { // 1024 + 1024 + 452
		t.Errorf("batches = %d, want 3", batches)
	}
	s.Reset()
	if b, ok := s.NextBatch(); !ok || b.NumRows() != 1024 {
		t.Error("Reset did not rewind the scan")
	}
}

func TestBatchFilterAndProject(t *testing.T) {
	tab := makeTable(t, "R", []string{"x", "a"}, [][]int64{{1, 10}, {2, 20}, {3, 30}, {4, 40}})
	f, err := NewBatchRangeFilter(NewBatchScan(tab), "R.a", 15, 35)
	if err != nil {
		t.Fatal(err)
	}
	rows := drainBatches(t, f)
	if !reflect.DeepEqual(rows, [][]int64{{2, 20}, {3, 30}}) {
		t.Errorf("filtered = %v", rows)
	}
	if _, err := NewBatchRangeFilter(NewBatchScan(tab), "R.zz", 0, 1); err == nil {
		t.Error("bad column: want error")
	}

	f.Reset()
	p, err := NewBatchProject(f, "R.a")
	if err != nil {
		t.Fatal(err)
	}
	rows = drainBatches(t, p)
	if !reflect.DeepEqual(rows, [][]int64{{20}, {30}}) {
		t.Errorf("projected through filter = %v", rows)
	}
	if _, err := NewBatchProject(NewBatchScan(tab), "bogus"); err == nil {
		t.Error("bad project column: want error")
	}
}

// TestRowsBatchesAdapters: wrapping row->batch->row preserves the stream.
func TestRowsBatchesAdapters(t *testing.T) {
	tab := makeTable(t, "R", []string{"x", "a"}, [][]int64{{1, 10}, {2, 20}, {3, 30}})
	direct := drain(t, NewTableScan(tab))
	adapted := drain(t, NewRows(NewBatches(NewTableScan(tab))))
	if !reflect.DeepEqual(direct, adapted) {
		t.Errorf("adapted rows = %v, want %v", adapted, direct)
	}
	a := NewRows(NewBatchScan(tab))
	if got := drain(t, a); !reflect.DeepEqual(got, direct) {
		t.Errorf("batch-scan rows = %v, want %v", got, direct)
	}
	a.Reset()
	if got := drain(t, a); len(got) != 3 {
		t.Errorf("after Reset: %v", got)
	}
}

// TestVecHashJoinBitIdentical: the vectorized join must produce exactly the
// same output sequence (not just multiset) as the row HashJoin and the
// NestedLoopJoin reference, at every parallelism level.
func TestVecHashJoinBitIdentical(t *testing.T) {
	r, s := randomJoinInputs(3, 5000, 4000, 300)
	want := drain(t, mustNestedLoop(t, NewTableScan(r), NewTableScan(s),
		JoinCond{LeftCol: "R.x", RightCol: "S.y"}))
	rowJoin, err := NewHashJoin(NewTableScan(r), NewTableScan(s), JoinCond{LeftCol: "R.x", RightCol: "S.y"})
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, rowJoin); !reflect.DeepEqual(got, want) {
		t.Fatalf("row HashJoin output differs from NestedLoopJoin (%d vs %d rows)", len(got), len(want))
	}
	for _, p := range []int{1, 2, 4, 0} {
		vj, err := NewVecHashJoin(NewBatchScan(r), NewBatchScan(s), p, JoinCond{LeftCol: "R.x", RightCol: "S.y"})
		if err != nil {
			t.Fatal(err)
		}
		if got := drainBatches(t, vj); !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: VecHashJoin output differs from NestedLoopJoin (%d vs %d rows)", p, len(got), len(want))
		}
	}
}

func mustNestedLoop(t *testing.T, l, r Operator, conds ...JoinCond) *NestedLoopJoin {
	t.Helper()
	j, err := NewNestedLoopJoin(l, r, conds...)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestVecHashJoinLongChain exercises a match chain longer than a batch, which
// must pause and resume across NextBatch calls.
func TestVecHashJoinLongChain(t *testing.T) {
	r := data.MustNewTable("R", "x", "p")
	for i := int64(0); i < 3000; i++ {
		if err := r.AppendRow(7, i); err != nil {
			t.Fatal(err)
		}
	}
	s := makeTable(t, "S", []string{"y"}, [][]int64{{7}, {8}, {7}})
	vj, err := NewVecHashJoin(NewBatchScan(r), NewBatchScan(s), 1, JoinCond{LeftCol: "R.x", RightCol: "S.y"})
	if err != nil {
		t.Fatal(err)
	}
	rows := drainBatches(t, vj)
	if len(rows) != 6000 {
		t.Fatalf("rows = %d, want 6000", len(rows))
	}
	// Matches stream in build order per probe row, twice.
	for i := 0; i < 3000; i++ {
		if rows[i][1] != int64(i) || rows[3000+i][1] != int64(i) {
			t.Fatalf("row %d: chain order broken: %v / %v", i, rows[i], rows[3000+i])
		}
	}
	vj.Reset()
	if again := drainBatches(t, vj); len(again) != 6000 {
		t.Errorf("after Reset: %d rows", len(again))
	}
}

func TestVecHashJoinEmptyInputs(t *testing.T) {
	empty := data.MustNewTable("E", "x")
	full := makeTable(t, "F", []string{"y"}, [][]int64{{1}, {2}})
	j1, err := NewVecHashJoin(NewBatchScan(empty), NewBatchScan(full), 1, JoinCond{LeftCol: "E.x", RightCol: "F.y"})
	if err != nil {
		t.Fatal(err)
	}
	if rows := drainBatches(t, j1); len(rows) != 0 {
		t.Errorf("empty build side: %d rows", len(rows))
	}
	j2, err := NewVecHashJoin(NewBatchScan(full), NewBatchScan(empty), 1, JoinCond{LeftCol: "F.y", RightCol: "E.x"})
	if err != nil {
		t.Fatal(err)
	}
	if rows := drainBatches(t, j2); len(rows) != 0 {
		t.Errorf("empty probe side: %d rows", len(rows))
	}
	if _, err := NewVecHashJoin(NewBatchScan(full), NewBatchScan(empty), 1); err == nil {
		t.Error("no conditions: want error")
	}
	if _, err := NewVecHashJoin(NewBatchScan(full), NewBatchScan(empty), 1, JoinCond{LeftCol: "F.q", RightCol: "E.x"}); err == nil {
		t.Error("bad column: want error")
	}
}

// randomMultiCondInputs builds tables with duplicates on both sides, negative
// keys, and (sometimes) empty inputs, for multi-condition join testing.
func randomMultiCondInputs(seed int64) (*data.Table, *data.Table, []JoinCond) {
	rng := rand.New(rand.NewSource(seed))
	n1, n2 := rng.Intn(120), rng.Intn(120)
	if seed%7 == 0 {
		n1 = 0 // occasionally empty build side
	}
	if seed%11 == 0 {
		n2 = 0 // occasionally empty probe side
	}
	dom := int64(2 + rng.Intn(6))                           // tiny domains force duplicates
	draw := func() int64 { return rng.Int63n(2*dom) - dom } // negative and positive keys
	r := data.MustNewTable("R", "w", "y", "p")
	for i := 0; i < n1; i++ {
		r.AppendRow(draw(), draw(), rng.Int63n(50))
	}
	s := data.MustNewTable("S", "x", "z", "q")
	for i := 0; i < n2; i++ {
		s.AppendRow(draw(), draw(), rng.Int63n(50))
	}
	conds := []JoinCond{
		{LeftCol: "R.w", RightCol: "S.x"},
		{LeftCol: "R.y", RightCol: "S.z"},
	}
	return r, s, conds
}

// TestJoinPropertyMultiCond is the property test over the three join
// implementations: on randomized multi-condition inputs (duplicates on both
// sides, negative keys, empty inputs) HashJoin, VecHashJoin, NestedLoopJoin,
// and MergeJoin (on the first condition, remaining conditions as a filter)
// must produce identical sorted outputs.
func TestJoinPropertyMultiCond(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r, s, conds := randomMultiCondInputs(seed)

		nj := mustNestedLoop(t, NewTableScan(r), NewTableScan(s), conds...)
		want := drain(t, nj)
		sortRows(want)

		hj, err := NewHashJoin(NewTableScan(r), NewTableScan(s), conds...)
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, hj)
		sortRows(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: HashJoin != NestedLoopJoin (%d vs %d rows)", seed, len(got), len(want))
		}

		for _, p := range []int{1, 3} {
			vj, err := NewVecHashJoin(NewBatchScan(r), NewBatchScan(s), p, conds...)
			if err != nil {
				t.Fatal(err)
			}
			vg := drainBatches(t, vj)
			sortRows(vg)
			if !reflect.DeepEqual(vg, want) {
				t.Fatalf("seed %d parallelism %d: VecHashJoin != NestedLoopJoin (%d vs %d rows)", seed, p, len(vg), len(want))
			}
		}

		// MergeJoin handles the first condition; the second is applied as an
		// equality filter on top — together an equivalent multi-condition join.
		ls, err := NewSort(NewTableScan(r), "R.w")
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewSort(NewTableScan(s), "S.x")
		if err != nil {
			t.Fatal(err)
		}
		mj, err := NewMergeJoin(ls, rs, "R.w", "S.x")
		if err != nil {
			t.Fatal(err)
		}
		iy, _ := columnIndex(mj.Columns(), "R.y")
		iz, _ := columnIndex(mj.Columns(), "S.z")
		mg := drain(t, NewFilter(mj, func(row []int64) bool { return row[iy] == row[iz] }))
		sortRows(mg)
		if !reflect.DeepEqual(mg, want) {
			t.Fatalf("seed %d: MergeJoin+filter != NestedLoopJoin (%d vs %d rows)", seed, len(mg), len(want))
		}
	}
}

// TestPlanBatchMatchesRowReference: the full batch pipeline (Plan + the Rows
// adapter) must be row-for-row identical to a reference plan assembled from
// NestedLoopJoin in the same join order, and identical at every parallelism
// level — the executor-rewrite acceptance check.
func TestPlanBatchMatchesRowReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cat := data.NewCatalog()
	r := data.MustNewTable("R", "x")
	for i := 0; i < 400; i++ {
		r.AppendRow(rng.Int63n(40))
	}
	s := data.MustNewTable("S", "y", "z", "a")
	for i := 0; i < 500; i++ {
		s.AppendRow(rng.Int63n(40), rng.Int63n(30), rng.Int63n(100))
	}
	u := data.MustNewTable("T", "w", "b")
	for i := 0; i < 300; i++ {
		u.AppendRow(rng.Int63n(30), rng.Int63n(100))
	}
	cat.MustAdd(r)
	cat.MustAdd(s)
	cat.MustAdd(u)
	e, err := query.Chain([]string{"R", "S", "T"}, []string{"x", "z"}, []string{"y", "w"})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same connectivity-preserving join order with nested
	// loops (build side left, probe side right), row at a time.
	j1 := mustNestedLoop(t, NewTableScan(s), NewTableScan(r), JoinCond{LeftCol: "S.y", RightCol: "R.x"})
	j2 := mustNestedLoop(t, NewTableScan(u), j1, JoinCond{LeftCol: "T.w", RightCol: "S.z"})
	want := drain(t, j2)

	for _, p := range []int{1, 2, 0} {
		op, err := PlanBatch(cat, e, Options{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		got := drainBatches(t, op)
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d rows, want %d", p, len(got), len(want))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: batch plan output differs from nested-loop reference", p)
		}
	}

	// Materialize through the batch pipeline must agree with a row-at-a-time
	// materialization of the reference.
	op, err := Plan(cat, e)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Materialize(op, "RST")
	if err != nil {
		t.Fatal(err)
	}
	j2.Reset()
	// NestedLoopJoin.Reset only rewinds the probe side; rebuild to be safe.
	j1b := mustNestedLoop(t, NewTableScan(s), NewTableScan(r), JoinCond{LeftCol: "S.y", RightCol: "R.x"})
	j2b := mustNestedLoop(t, NewTableScan(u), j1b, JoinCond{LeftCol: "T.w", RightCol: "S.z"})
	ref := drain(t, j2b)
	if tab.NumRows() != len(ref) {
		t.Fatalf("materialized %d rows, want %d", tab.NumRows(), len(ref))
	}
	for c, name := range tab.ColumnNames() {
		col := tab.MustColumn(name)
		for i := range ref {
			if col[i] != ref[i][c] {
				t.Fatalf("materialized [%d][%s] = %d, want %d", i, name, col[i], ref[i][c])
			}
		}
	}
}

// TestMaterializeRowOperator: Materialize still accepts arbitrary row
// operators (not produced by Plan).
func TestMaterializeRowOperator(t *testing.T) {
	tab := makeTable(t, "R", []string{"x", "a"}, [][]int64{{1, 10}, {2, 20}, {3, 30}})
	f, err := NewRangeFilter(NewTableScan(tab), "R.a", 15, 35)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Materialize(f, "F")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || !out.HasColumn("R_a") {
		t.Errorf("materialized: %d rows, cols %v", out.NumRows(), out.ColumnNames())
	}
}

// TestRangeCardinalityOpts: the counting drain agrees with filtering.
func TestRangeCardinalityOpts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cat := data.NewCatalog()
	r := data.MustNewTable("R", "x")
	for i := 0; i < 300; i++ {
		r.AppendRow(rng.Int63n(25))
	}
	s := data.MustNewTable("S", "y", "a")
	for i := 0; i < 400; i++ {
		s.AppendRow(rng.Int63n(25), rng.Int63n(200))
	}
	cat.MustAdd(r)
	cat.MustAdd(s)
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	vals, err := AttrValues(cat, e, "S", "a")
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, v := range vals {
		if v >= 50 && v <= 120 {
			want++
		}
	}
	for _, p := range []int{1, 2} {
		got, err := RangeCardinalityOpts(cat, e, "S", "a", 50, 120, Options{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("parallelism %d: range cardinality = %d, want %d", p, got, want)
		}
	}
	card, err := Cardinality(cat, e)
	if err != nil {
		t.Fatal(err)
	}
	if card != int64(len(vals)) {
		t.Errorf("cardinality = %d, want %d", card, len(vals))
	}
}
