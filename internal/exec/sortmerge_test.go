package exec

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/sitstats/sits/internal/data"
)

// refSortRows is the pre-refactor row Sort contract: buffer every input row
// and stable-sort by the key column ascending.
func refSortRows(rows [][]int64, idx int) [][]int64 {
	out := make([][]int64, len(rows))
	copy(out, rows)
	sort.SliceStable(out, func(i, j int) bool { return out[i][idx] < out[j][idx] })
	return out
}

// refMergeJoin is the pre-refactor row merge-join contract over two sorted
// inputs: for each right row matching a run of equal left keys, the full left
// run is emitted in input order (left varying fastest).
func refMergeJoin(l, r [][]int64, lIdx, rIdx int) [][]int64 {
	var out [][]int64
	li, ri := 0, 0
	for li < len(l) && ri < len(r) {
		lk, rk := l[li][lIdx], r[ri][rIdx]
		switch {
		case lk < rk:
			li++
		case lk > rk:
			ri++
		default:
			le := li
			for le < len(l) && l[le][lIdx] == lk {
				le++
			}
			for ri < len(r) && r[ri][rIdx] == lk {
				for i := li; i < le; i++ {
					row := append(append([]int64{}, l[i]...), r[ri]...)
					out = append(out, row)
				}
				ri++
			}
			li = le
		}
	}
	return out
}

// sortCases enumerates the shapes the batch sort must handle: empties,
// single rows, duplicate and negative keys, presorted and reverse inputs.
func sortCases() map[string][][]int64 {
	rng := rand.New(rand.NewSource(7))
	random := make([][]int64, 300)
	for i := range random {
		random[i] = []int64{rng.Int63n(40) - 20, int64(i)}
	}
	asc := make([][]int64, 150)
	desc := make([][]int64, 150)
	for i := range asc {
		asc[i] = []int64{int64(i / 3), int64(i)}
		desc[i] = []int64{int64(-i), int64(i)}
	}
	return map[string][][]int64{
		"empty":     {},
		"single":    {{42, 0}},
		"allEqual":  {{5, 0}, {5, 1}, {5, 2}, {5, 3}},
		"random":    random,
		"presorted": asc,
		"reverse":   desc,
	}
}

func TestBatchSortMatchesReference(t *testing.T) {
	for name, rows := range sortCases() {
		tab := makeTable(t, "R", []string{"k", "p"}, rows)
		want := refSortRows(rows, 0)
		if want == nil {
			want = [][]int64{}
		}
		for _, size := range []int{0, 1, 3, 64} {
			bs, err := NewBatchSortSize(NewBatchScan(tab), "R.k", size)
			if err != nil {
				t.Fatal(err)
			}
			got := drain(t, NewRows(bs))
			if got == nil {
				got = [][]int64{}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s size %d: sort = %v, want %v", name, size, got, want)
			}
			bs.Reset()
			again := drain(t, NewRows(bs))
			if again == nil {
				again = [][]int64{}
			}
			if !reflect.DeepEqual(again, want) {
				t.Fatalf("%s size %d: sort after Reset = %v, want %v", name, size, again, want)
			}
		}
	}
}

// TestBatchSortSelInput drives the sort through a filter, whose output
// batches carry selection vectors, so the gather path over Sel is exercised.
func TestBatchSortSelInput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var rows [][]int64
	for i := 0; i < 500; i++ {
		rows = append(rows, []int64{rng.Int63n(100) - 50, int64(i)})
	}
	tab := makeTable(t, "R", []string{"k", "p"}, rows)
	f, err := NewBatchRangeFilter(NewBatchScanSize(tab, 32), "R.k", -10, 25)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := NewBatchSortSize(f, "R.k", 16)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, NewRows(bs))
	var kept [][]int64
	for _, r := range rows {
		if r[0] >= -10 && r[0] <= 25 {
			kept = append(kept, r)
		}
	}
	want := refSortRows(kept, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sort over Sel batches = %d rows, want %d", len(got), len(want))
	}
}

func TestBatchSortBadColumn(t *testing.T) {
	tab := makeTable(t, "R", []string{"k"}, nil)
	if _, err := NewBatchSort(NewBatchScan(tab), "R.zz"); err == nil {
		t.Error("bad sort column: want error")
	}
}

// sortedJoinInput builds a table of (key, payload) rows with the keys sorted
// ascending — duplicates and negative keys included.
func sortedJoinInput(t *testing.T, name string, rng *rand.Rand, n, domain int) (*data.Table, [][]int64) {
	t.Helper()
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(int64(domain)) - int64(domain)/2
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	rows := make([][]int64, n)
	for i, k := range keys {
		rows[i] = []int64{k, int64(i)}
	}
	return makeTable(t, name, []string{"k", "p"}, rows), rows
}

func TestBatchMergeJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shapes := []struct{ nl, nr, domain int }{
		{0, 10, 5}, {10, 0, 5}, {1, 1, 1}, {1, 200, 8},
		{50, 50, 4}, {200, 150, 25}, {300, 300, 2}, {97, 251, 1000},
	}
	for _, sh := range shapes {
		l, lrows := sortedJoinInput(t, "L", rng, sh.nl, sh.domain)
		r, rrows := sortedJoinInput(t, "R", rng, sh.nr, sh.domain)
		want := refMergeJoin(lrows, rrows, 0, 0)
		for _, size := range []int{0, 1, 2, 7} {
			// Small scan batches force left runs to span input batch boundaries.
			for _, scanSize := range []int{3, DefaultBatchSize} {
				mj, err := NewBatchMergeJoinSize(
					NewBatchScanSize(l, scanSize), NewBatchScanSize(r, scanSize), "L.k", "R.k", size)
				if err != nil {
					t.Fatal(err)
				}
				got := drain(t, NewRows(mj))
				if !equalRows(got, want) {
					t.Fatalf("shape %v size %d scan %d: merge join %d rows, want %d",
						sh, size, scanSize, len(got), len(want))
				}
				mj.Reset()
				if again := drain(t, NewRows(mj)); !equalRows(again, want) {
					t.Fatalf("shape %v size %d: Reset replay diverged", sh, size)
				}
			}
		}
		// Multiset agreement with the nested-loop reference.
		nj, err := NewNestedLoopJoin(NewTableScan(l), NewTableScan(r), JoinCond{LeftCol: "L.k", RightCol: "R.k"})
		if err != nil {
			t.Fatal(err)
		}
		n := drain(t, nj)
		m := append([][]int64{}, want...)
		sortRows(n)
		sortRows(m)
		if !equalRows(n, m) {
			t.Fatalf("shape %v: merge join multiset != nested loop (%d vs %d rows)", sh, len(m), len(n))
		}
	}
}

func equalRows(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestBatchMergeJoinSelInput joins filtered inputs so both sides deliver
// batches with selection vectors.
func TestBatchMergeJoinSelInput(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l, lrows := sortedJoinInput(t, "L", rng, 400, 30)
	r, rrows := sortedJoinInput(t, "R", rng, 350, 30)
	lf, err := NewBatchRangeFilter(NewBatchScanSize(l, 16), "L.k", -8, 9)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := NewBatchRangeFilter(NewBatchScanSize(r, 16), "R.k", -8, 9)
	if err != nil {
		t.Fatal(err)
	}
	mj, err := NewBatchMergeJoinSize(lf, rf, "L.k", "R.k", 5)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, NewRows(mj))
	filter := func(rows [][]int64) [][]int64 {
		var out [][]int64
		for _, row := range rows {
			if row[0] >= -8 && row[0] <= 9 {
				out = append(out, row)
			}
		}
		return out
	}
	want := refMergeJoin(filter(lrows), filter(rrows), 0, 0)
	if !equalRows(got, want) {
		t.Fatalf("merge join over Sel batches = %d rows, want %d", len(got), len(want))
	}
}

// TestRowSortMergeJoinViews: the row-level Sort/MergeJoin constructors are
// thin views over the batch operators and must keep the seed contract.
func TestRowSortMergeJoinViews(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var rows [][]int64
	for i := 0; i < 120; i++ {
		rows = append(rows, []int64{rng.Int63n(10), int64(i)})
	}
	tab := makeTable(t, "R", []string{"k", "p"}, rows)
	s, err := NewSort(NewTableScan(tab), "R.k")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Columns(), []string{"R.k", "R.p"}) {
		t.Fatalf("sort columns = %v", s.Columns())
	}
	got := drain(t, s)
	if !equalRows(got, refSortRows(rows, 0)) {
		t.Fatalf("row Sort view diverged from reference")
	}
	s.Reset()
	if again := drain(t, s); !equalRows(again, got) {
		t.Fatalf("row Sort view Reset replay diverged")
	}
	if _, err := NewMergeJoin(NewTableScan(tab), NewTableScan(tab), "R.k", "R.zz"); err == nil {
		t.Error("bad merge join column: want error")
	}
}

func TestAdaptiveBatchSize(t *testing.T) {
	cases := []struct{ ncols, want int }{
		{0, DefaultBatchSize},
		{1, DefaultBatchSize},
		{16, DefaultBatchSize}, // 128KiB / (8*16) = exactly 1024 rows
		{17, 512},
		{33, 256},
		{256, MinBatchSize},
		{10000, MinBatchSize},
	}
	for _, c := range cases {
		if got := AdaptiveBatchSize(c.ncols); got != c.want {
			t.Errorf("AdaptiveBatchSize(%d) = %d, want %d", c.ncols, got, c.want)
		}
	}
	// Always a power of two within [MinBatchSize, DefaultBatchSize], and
	// monotonically non-increasing in the column count.
	prev := DefaultBatchSize
	for n := 1; n < 2000; n++ {
		got := AdaptiveBatchSize(n)
		if got < MinBatchSize || got > DefaultBatchSize || got&(got-1) != 0 {
			t.Fatalf("AdaptiveBatchSize(%d) = %d out of contract", n, got)
		}
		if got > prev {
			t.Fatalf("AdaptiveBatchSize not monotone at %d: %d > %d", n, got, prev)
		}
		prev = got
	}
}
