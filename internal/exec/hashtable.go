package exec

// joinTable is the shared hash-join core behind HashJoin and VecHashJoin.
//
// Build rows live in a flat row-major arena ([]int64 with a fixed stride =
// number of build columns), so the build phase performs zero per-row slice
// allocations: appending a batch grows one slice. Lookup is an open-addressing
// table with linear probing over power-of-two slot arrays. Each claimed slot
// holds a 64-bit slot key — the raw attribute value for single-condition joins
// (exact, no verification needed) or a 64-bit mix of the condition columns for
// multi-condition joins (verified against the arena on probe) — plus the head
// and tail of the chain of build rows sharing that slot key. Chains thread
// through a per-row next array in insertion order, so probes emit matches in
// build-input order: the executor's output is byte-identical to the row-at-a-
// time executor it replaces, at every parallelism level.
//
// The build side is partitioned by high hash bits across workers: every
// partition owns a private slot array, so insertion needs no locks, and a
// probe key's partition is a pure function of its hash, so lookups stay
// lock-free too.
type joinTable struct {
	stride int   // arena row width (number of build columns)
	keyIdx []int // key column offsets within an arena row
	single bool  // one join condition: slot keys are raw values

	arena []int64 // row-major build rows
	rows  int

	next  []int32 // chain links, 1-based; 0 terminates
	parts []jtPart
}

// jtPart is one hash partition: an open-addressing slot array.
type jtPart struct {
	mask uint64
	key  []uint64 // slot key; meaningful only where head != 0
	head []int32  // 1-based first build row of the slot's chain; 0 = empty
	tail []int32  // 1-based last build row of the slot's chain
}

func newJoinTable(stride int, keyIdx []int) *joinTable {
	return &joinTable{stride: stride, keyIdx: keyIdx, single: len(keyIdx) == 1}
}

// mix64 is the 64-bit finalizer of MurmurHash3: a cheap, high-quality mixer.
//
//statcheck:hot
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

const hashSeed = 0x9e3779b97f4a7c15 // golden-ratio increment, splitmix64 style

// hashVals mixes a multi-condition key tuple into 64 bits.
//
//statcheck:hot
func hashVals(vals []int64) uint64 {
	h := uint64(len(vals))
	for _, v := range vals {
		h = mix64(h ^ (uint64(v) * hashSeed))
	}
	return h
}

// grow extends the arena by n values without the temporary slice an
// append(make(...)) would allocate.
//
//statcheck:hot
func (t *joinTable) grow(n int) []int64 {
	need := len(t.arena) + n
	if cap(t.arena) < need {
		newCap := 2 * cap(t.arena)
		if newCap < need {
			newCap = need
		}
		if newCap < 1024 {
			newCap = 1024
		}
		grown := make([]int64, len(t.arena), newCap)
		copy(grown, t.arena)
		t.arena = grown
	}
	t.arena = t.arena[:need]
	return t.arena[need-n:]
}

// appendRow copies one build row into the arena.
func (t *joinTable) appendRow(row []int64) {
	copy(t.grow(t.stride), row)
	t.rows++
}

// appendBatch transposes a column batch into the arena (row-major), applying
// the batch's selection vector.
//
//statcheck:hot
func (t *joinTable) appendBatch(b *Batch) {
	n := b.NumRows()
	if n == 0 {
		return
	}
	dst := t.grow(n * t.stride)
	for ci, col := range b.Cols {
		if b.Sel != nil {
			for i, r := range b.Sel {
				dst[i*t.stride+ci] = col[r]
			}
		} else {
			for i := 0; i < n; i++ {
				dst[i*t.stride+ci] = col[i]
			}
		}
	}
	t.rows += n
}

// slotKeyHash returns build row i's slot key and hash.
//
//statcheck:hot
func (t *joinTable) slotKeyHash(i int) (uint64, uint64) {
	return t.rowKeyHash(t.arena[i*t.stride : (i+1)*t.stride])
}

// rowKeyHash returns the slot key and hash of one build-side row, wherever
// it lives (arena, spill buffer, or run chunk). It is the single definition
// of the build-side hash, so grace partitioning routes a key to the same
// partition no matter which phase computed the hash.
//
//statcheck:hot
func (t *joinTable) rowKeyHash(row []int64) (uint64, uint64) {
	if t.single {
		v := uint64(row[t.keyIdx[0]])
		return v, mix64(v)
	}
	h := uint64(len(t.keyIdx))
	for _, k := range t.keyIdx {
		h = mix64(h ^ (uint64(row[k]) * hashSeed))
	}
	return h, h
}

// probeKeyHash returns the slot key and hash for a probe-side key tuple.
//
//statcheck:hot
func (t *joinTable) probeKeyHash(vals []int64) (uint64, uint64) {
	if t.single {
		v := uint64(vals[0])
		return v, mix64(v)
	}
	h := hashVals(vals)
	return h, h
}

// partOf maps a hash to its partition via a multiply-shift on the high 32
// bits; the slot index uses the low bits, so the two stay uncorrelated.
func (t *joinTable) partOf(h uint64) int {
	if len(t.parts) == 1 {
		return 0
	}
	return int((h >> 32) * uint64(len(t.parts)) >> 32)
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (p *jtPart) init(count int) {
	size := nextPow2(2 * count)
	if size < 8 {
		size = 8
	}
	p.mask = uint64(size - 1)
	p.key = make([]uint64, size)
	p.head = make([]int32, size)
	p.tail = make([]int32, size)
}

// insert links build row r (0-based) into the partition. Chains grow at the
// tail, so they preserve build-input order. Slot arrays are sized to load
// factor <= 1/2, so linear probing always terminates.
//
//statcheck:hot
func (p *jtPart) insert(r int32, key, h uint64, next []int32) {
	slot := h & p.mask
	for {
		if p.head[slot] == 0 {
			p.key[slot] = key
			p.head[slot] = r + 1
			p.tail[slot] = r + 1
			return
		}
		if p.key[slot] == key {
			next[p.tail[slot]-1] = r + 1
			p.tail[slot] = r + 1
			return
		}
		slot = (slot + 1) & p.mask
	}
}

// buildMinRowsPerWorker keeps tiny build sides on one worker: below this many
// rows per partition the fan-out costs more than it saves.
const buildMinRowsPerWorker = 4096

// build hashes every arena row and constructs the partitioned table using up
// to `parallelism` workers (0 = GOMAXPROCS), running the fan-out on the
// shared exec pool. The result is independent of the worker count:
// partitioning is a pure function of the key hash, and each partition
// inserts its rows in ascending arena order either way.
func (t *joinTable) build(parallelism int) {
	n := t.rows
	t.next = make([]int32, n)
	workers := ResolveParallelism(parallelism)
	if workers > n/buildMinRowsPerWorker {
		workers = n / buildMinRowsPerWorker
	}
	if workers < 1 {
		workers = 1
	}

	// Hash the arena rows in contiguous blocks, one fork-join morsel each;
	// every block writes its own keys/hs range, so the vectors are identical
	// at any worker count.
	keys := make([]uint64, n)
	hs := make([]uint64, n)
	Default().ForkJoinWidth(workers, workers, func(w int) {
		for i := w * n / workers; i < (w+1)*n/workers; i++ {
			keys[i], hs[i] = t.slotKeyHash(i)
		}
	})

	if workers == 1 {
		t.parts = make([]jtPart, 1)
		t.parts[0].init(n)
		p := &t.parts[0]
		for i := 0; i < n; i++ {
			p.insert(int32(i), keys[i], hs[i], t.next)
		}
		return
	}

	// Partition rows by high hash bits, then build each partition's slot
	// array on its own pool worker. order[] groups row indices by partition
	// while preserving ascending order within each partition, so chains come
	// out in build-input order exactly as in the serial build.
	t.parts = make([]jtPart, workers)
	pid := make([]int32, n)
	counts := make([]int32, workers)
	for i := 0; i < n; i++ {
		p := int32((hs[i] >> 32) * uint64(workers) >> 32)
		pid[i] = p
		counts[p]++
	}
	offsets := make([]int32, workers+1)
	for p := 0; p < workers; p++ {
		offsets[p+1] = offsets[p] + counts[p]
	}
	order := make([]int32, n)
	cursor := append([]int32(nil), offsets[:workers]...)
	for i := 0; i < n; i++ {
		order[cursor[pid[i]]] = int32(i)
		cursor[pid[i]]++
	}
	Default().ForkJoinWidth(workers, workers, func(w int) {
		p := &t.parts[w]
		p.init(int(counts[w]))
		for _, i := range order[offsets[w]:offsets[w+1]] {
			p.insert(i, keys[i], hs[i], t.next)
		}
	})
}

// probeHead returns the 1-based head of the chain whose slot key matches, or
// 0 when the key is absent. For multi-condition joins the caller must verify
// each chain row with matches (slot keys are hashes there).
//
//statcheck:hot
func (t *joinTable) probeHead(key, h uint64) int32 {
	p := &t.parts[t.partOf(h)]
	slot := h & p.mask
	for {
		hd := p.head[slot]
		if hd == 0 {
			return 0
		}
		if p.key[slot] == key {
			return hd
		}
		slot = (slot + 1) & p.mask
	}
}

// chainNext returns the chain successor of 1-based build row r (0 = end).
//
//statcheck:hot
func (t *joinTable) chainNext(r int32) int32 { return t.next[r-1] }

// buildRow returns the arena slice of 1-based build row r.
//
//statcheck:hot
func (t *joinTable) buildRow(r int32) []int64 {
	off := int(r-1) * t.stride
	return t.arena[off : off+t.stride]
}

// matches verifies a chain row's key columns against the probe tuple; only
// needed for multi-condition joins, where distinct tuples can share a mixed
// slot key.
//
//statcheck:hot
func (t *joinTable) matches(r int32, vals []int64) bool {
	row := t.buildRow(r)
	for i, k := range t.keyIdx {
		if row[k] != vals[i] {
			return false
		}
	}
	return true
}
