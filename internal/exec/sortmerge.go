package exec

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/sitstats/sits/internal/mem"
)

// This file holds the batch-native sort and merge-join operators. Both used to
// run row-at-a-time behind the Rows/Batches adapters, which cost a transpose
// on entry and exit plus a row copy per advance; here Sort argsorts an index
// permutation over materialized column vectors and gathers each column once,
// and MergeJoin merges two sorted batch streams with run detection for
// duplicate keys, emitting column batches directly. The row Sort/MergeJoin
// types in operators.go are thin row views over these.

// BatchSort materializes its input column-wise and sorts it by one column
// ascending. The sort is stable: rows with equal keys keep their input order,
// matching the row-at-a-time sort it replaces bit for bit.
//
// Under a memory governor BatchSort is an external merge sort: input buffers
// grow only as far as the operator's grant allows; when a reservation is
// denied the buffered rows are stolen into a pool task that argsorts and
// spills them as one sorted run while the drain keeps scanning, and after the
// drain the spilled runs are recombined by a loser-tree k-way merge, breaking
// key ties by run index so the merged stream is bit-identical to the
// in-memory stable sort at any budget and any pool width. Without a governor (or when
// everything fits the budget) the in-memory path is unchanged: argsort an
// index permutation, gather every column once, serve zero-copy sub-slices.
//
// Sorts whose input is a whole-table scan consult the sorted-run cache (when
// one is attached): a hit skips the drain and argsort entirely; a completed
// in-memory sort populates it.
type BatchSort struct {
	in    BatchOperator
	col   string
	idx   int
	size  int
	grant *mem.Grant
	gov   *mem.Governor
	cache *SortCache

	sorted bool
	// In-memory mode: fully sorted columns served as sub-slices.
	cols [][]int64
	n    int
	pos  int
	out  Batch
	// Drain state. permBytes is the argsort permutation's reservation: the
	// perm slice is sized to the high-water buffered row count and reused
	// across spill runs, so its bytes are reserved as the buffer grows and
	// retained when a run is flushed.
	bufCols   [][]int64
	bufBytes  int64
	perm      []int32
	permBytes int64
	// Async run generation: a flushed buffer is stolen (columns plus their
	// byte reservation) into a pool task that argsorts and spills it while
	// the drain keeps scanning. runTarget is latched to half the buffer's
	// high-water size at the first budget denial, so from then on half the
	// budget holds the run being spilled and half refills behind it.
	runTarget int64
	spills    []*spillJob
	mu        sync.Mutex // guards runs and spillErr against spill tasks
	spillErr  any
	// Spill mode: sorted runs recombined by a loser-tree merge.
	runs    []*mem.Run
	cursors []*colCursor
	lt      *loserTree
	bufs    [][]int64
}

// spillJob is one stolen sort buffer awaiting argsort + spill. The pool runs
// it when a worker frees up, but the claim flag lets the sort itself execute
// the job inline from waitSpills — so a sort blocked waiting on its spills
// always makes progress even when every pool worker is busy (or is itself a
// sort waiting on spills).
type spillJob struct {
	claimed atomic.Bool
	done    chan struct{}
	run     func()
}

// exec runs the job if no one has claimed it yet; otherwise the claimer is
// already on it and done will close when it finishes.
func (j *spillJob) exec() {
	if !j.claimed.CompareAndSwap(false, true) {
		return
	}
	defer close(j.done)
	j.run()
}

// NewBatchSort sorts in by col ascending, with an adaptive batch size derived
// from the output width.
func NewBatchSort(in BatchOperator, col string) (*BatchSort, error) {
	return NewBatchSortSize(in, col, 0)
}

// NewBatchSortSize is NewBatchSort with an explicit batch size (0 = adaptive).
func NewBatchSortSize(in BatchOperator, col string, batchSize int) (*BatchSort, error) {
	return NewBatchSortMem(in, col, batchSize, nil, nil)
}

// NewBatchSortMem is NewBatchSortSize with a memory governor (nil =
// unlimited, never spills) and a sorted-run cache (nil = no caching).
func NewBatchSortMem(in BatchOperator, col string, batchSize int, gov *mem.Governor, cache *SortCache) (*BatchSort, error) {
	i, err := columnIndex(in.Columns(), col)
	if err != nil {
		return nil, err
	}
	if batchSize <= 0 {
		batchSize = AdaptiveBatchSize(len(in.Columns()))
	}
	s := &BatchSort{in: in, col: col, idx: i, size: batchSize, gov: gov, cache: cache}
	s.grant = gov.Grant("sort(" + col + ")")
	s.out.Cols = make([][]int64, len(in.Columns()))
	return s, nil
}

// Columns implements BatchOperator.
func (s *BatchSort) Columns() []string { return s.in.Columns() }

// drainBatch copies a batch's active rows into the drain buffers.
func (s *BatchSort) drainBatch(b *Batch) {
	if b.Sel != nil {
		for c, col := range b.Cols {
			for _, r := range b.Sel {
				s.bufCols[c] = append(s.bufCols[c], col[r])
			}
		}
	} else {
		for c, col := range b.Cols {
			s.bufCols[c] = append(s.bufCols[c], col...)
		}
	}
}

// argsortBuf stable-argsorts the buffered rows by the key column into s.perm.
func (s *BatchSort) argsortBuf() {
	n := len(s.bufCols[s.idx])
	if cap(s.perm) < n {
		s.perm = make([]int32, n)
	}
	perm := s.perm[:n]
	for i := range perm {
		perm[i] = int32(i)
	}
	key := s.bufCols[s.idx]
	sort.SliceStable(perm, func(i, j int) bool { return key[perm[i]] < key[perm[j]] })
	s.perm = perm
}

// flushRunAsync steals the buffered rows — columns and their byte
// reservation — into a pool task that argsorts and spills them as one sorted
// run, then hands the drain a fresh empty buffer. The run's slot in s.runs is
// assigned here, at steal time, so run numbering is input order regardless of
// which spill task finishes first — the merge's (key, run index) tie-break
// relies on that. The stolen reservation is released by the task once the run
// is on disk; a panic inside the task (spillFail on I/O errors) is stashed
// and re-raised by waitSpills on the draining goroutine.
func (s *BatchSort) flushRunAsync() {
	nc := len(s.bufCols)
	if nc == 0 || len(s.bufCols[s.idx]) == 0 {
		return
	}
	store, err := s.gov.Runs()
	if err != nil {
		spillFail("open run store", err)
	}
	cols, bytes := s.bufCols, s.bufBytes
	s.bufCols = make([][]int64, nc)
	s.bufBytes = 0
	s.mu.Lock()
	slot := len(s.runs)
	s.runs = append(s.runs, nil)
	s.mu.Unlock()
	j := &spillJob{done: make(chan struct{})}
	j.run = func() {
		defer func() {
			if r := recover(); r != nil {
				s.mu.Lock()
				if s.spillErr == nil {
					s.spillErr = r
				}
				s.mu.Unlock()
			}
		}()
		s.spillRun(store, cols, slot)
		s.grant.Release(bytes)
	}
	s.spills = append(s.spills, j)
	Default().Submit(j.exec)
}

// spillRun stable-argsorts cols by the key column and writes them as the
// sorted run in slot. It runs on a pool worker (or inline from waitSpills),
// so it works only on its own arguments and per-call scratch; s.runs is the
// one shared structure it touches, under s.mu.
func (s *BatchSort) spillRun(store *mem.RunStore, cols [][]int64, slot int) {
	nc := len(cols)
	n := len(cols[s.idx])
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	key := cols[s.idx]
	sort.SliceStable(perm, func(i, j int) bool { return key[perm[i]] < key[perm[j]] })
	w, err := store.Create("sortrun", nc)
	if err != nil {
		spillFail("create sorted run", err)
	}
	chunk := make([][]int64, nc)
	for c := range chunk {
		chunk[c] = make([]int64, spillBatchRows)
	}
	for start := 0; start < n; start += spillBatchRows {
		end := start + spillBatchRows
		if end > n {
			end = n
		}
		for c := 0; c < nc; c++ {
			dst := chunk[c][:end-start]
			src := cols[c]
			for i := range dst {
				dst[i] = src[perm[start+i]]
			}
			chunk[c] = dst
		}
		if err := w.WriteColumns(chunk); err != nil {
			spillFail("write sorted run", err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		spillFail("finish sorted run", err)
	}
	s.mu.Lock()
	s.runs[slot] = run
	s.mu.Unlock()
}

// waitSpills drives every outstanding spill job to completion and re-raises
// the first panic any of them hit. The wait claims unstarted jobs and runs
// them inline (see spillJob), so it cannot deadlock behind a saturated pool.
func (s *BatchSort) waitSpills() {
	if len(s.spills) == 0 {
		return
	}
	for _, j := range s.spills {
		j.exec()
	}
	for _, j := range s.spills {
		<-j.done
	}
	s.spills = s.spills[:0]
	s.mu.Lock()
	r := s.spillErr
	s.spillErr = nil
	s.mu.Unlock()
	if r != nil {
		panic(r)
	}
}

// reserveDrain reserves the bytes that admitting batch b into the drain
// buffers costs: the row data plus any growth of the argsort permutation
// (4 bytes per high-water buffered row — reused across runs, so its
// reservation is kept when a run flushes). With force the reservation is
// taken unconditionally.
func (s *BatchSort) reserveDrain(b *Batch, nc int, force bool) bool {
	rows := int64(b.NumRows())
	need := rows * int64(nc) * 8
	var permNeed int64
	if nc > 0 {
		if pb := 4 * (int64(len(s.bufCols[s.idx])) + rows); pb > s.permBytes {
			permNeed = pb - s.permBytes
		}
	}
	if force {
		s.grant.Force(need + permNeed)
	} else if !s.grant.TryReserve(need + permNeed) {
		return false
	}
	s.bufBytes += need
	s.permBytes += permNeed
	return true
}

// sort drains the input under the memory grant, spilling sorted runs when
// the budget denies growth, then either finishes in memory (argsort + gather
// — with a presorted fast path and sorted-run caching) or sets up the
// loser-tree merge over the spilled runs.
func (s *BatchSort) sort() {
	s.sorted = true
	nc := len(s.out.Cols)
	// Sorted-run cache: a whole-table scan sorted on the same column serves
	// the cached columns, skipping the drain and argsort entirely.
	scan, fromScan := s.in.(*BatchScan)
	if s.cache != nil && fromScan && scan.pos == 0 && scan.wholeTable() {
		if cols, ok := s.cache.lookup(scan.table, s.col, scan.gen); ok {
			s.cols = cols
			s.n = 0
			if nc > 0 {
				s.n = len(cols[0])
			}
			return
		}
	}
	s.bufCols = make([][]int64, nc)
	for {
		b, ok := s.in.NextBatch()
		if !ok {
			break
		}
		// Once runTarget is latched, flush proactively at half the budget:
		// the stolen half spills on the pool while the freed half refills
		// behind it, overlapping run generation with the scan.
		if s.runTarget > 0 && s.bufBytes >= s.runTarget {
			s.flushRunAsync()
		}
		if s.reserveDrain(b, nc, false) {
			s.drainBatch(b)
			continue
		}
		// Budget denied: steal the buffer into a spill task, wait for every
		// in-flight spill to return its reservation, then retry; a single
		// batch larger than the whole budget is force-admitted and spilled
		// alone.
		if s.runTarget == 0 {
			s.runTarget = s.bufBytes / 2
		}
		s.flushRunAsync()
		s.waitSpills()
		if s.reserveDrain(b, nc, false) {
			s.drainBatch(b)
			continue
		}
		s.reserveDrain(b, nc, true)
		s.drainBatch(b)
		s.flushRunAsync()
		s.waitSpills()
	}

	if len(s.runs) == 0 {
		s.finishInMemory(scan, fromScan)
		return
	}
	s.flushRunAsync()
	s.waitSpills()
	s.bufCols = nil
	s.openMerge()
}

// finishInMemory completes the no-spill path: presorted detection, argsort +
// gather, and sorted-run cache population for whole-table scans. The gather
// needs a second copy of the working set; when even that reservation is
// denied, the buffer is spilled as a single sorted run and served through
// the (memory-light) merge path instead.
func (s *BatchSort) finishInMemory(scan *BatchScan, fromScan bool) {
	nc := len(s.out.Cols)
	cols := s.bufCols
	s.n = 0
	if nc > 0 {
		s.n = len(cols[0])
	}
	key := []int64(nil)
	if nc > 0 {
		key = cols[s.idx]
	}
	presorted := true
	for i := 1; i < s.n; i++ {
		if key[i] < key[i-1] {
			presorted = false
			break
		}
	}
	switch {
	case presorted:
		s.cols = cols
	case !s.grant.TryReserve(int64(s.n) * int64(nc) * 8):
		s.flushRunAsync()
		s.waitSpills()
		s.bufCols = nil
		s.openMerge()
		return
	default:
		s.argsortBuf()
		s.cols = make([][]int64, nc)
		for c := range cols {
			s.cols[c] = make([]int64, s.n)
		}
		s.gather(cols)
		// The drain buffers are dead now; the grant keeps only the sorted
		// copy it just reserved.
		s.grant.Release(s.bufBytes)
		s.bufBytes = int64(s.n) * int64(nc) * 8
	}
	s.bufCols = nil
	if s.cache != nil && fromScan && scan.wholeTable() {
		s.cache.store(scan.table, s.col, scan.gen, s.cols)
	}
}

// gatherBlockRows is the morsel granularity of the parallel gather: below
// one block the fork-join dispatch costs more than the copy.
const gatherBlockRows = 1 << 15

// gather permutes every drained column into its sorted order. Large sorts
// fan the (column, row-block) grid out over the shared pool; every task
// writes a disjoint destination range through the same permutation, so the
// result is identical at any pool width.
func (s *BatchSort) gather(cols [][]int64) {
	nc := len(cols)
	perm := s.perm[:s.n]
	if s.n < gatherBlockRows {
		for c := range cols {
			src, dst := cols[c], s.cols[c]
			for i, p := range perm {
				dst[i] = src[p]
			}
		}
		return
	}
	nb := (s.n + gatherBlockRows - 1) / gatherBlockRows
	Default().ForkJoin(nc*nb, func(t int) {
		c, blk := t/nb, t%nb
		lo := blk * gatherBlockRows
		hi := lo + gatherBlockRows
		if hi > s.n {
			hi = s.n
		}
		src, dst := cols[c], s.cols[c]
		for i := lo; i < hi; i++ {
			dst[i] = src[perm[i]]
		}
	})
}

// openMerge opens a cursor per spilled run and builds the loser tree; called
// after the drain and again on Reset.
func (s *BatchSort) openMerge() {
	if cap(s.cursors) < len(s.runs) {
		s.cursors = make([]*colCursor, len(s.runs))
	}
	s.cursors = s.cursors[:len(s.runs)]
	for i, run := range s.runs {
		s.cursors[i] = openColCursor(run)
	}
	s.lt = newLoserTree(len(s.cursors), s.mergeLess)
	if s.bufs == nil {
		nc := len(s.out.Cols)
		s.bufs = make([][]int64, nc)
		for c := range s.bufs {
			s.bufs[c] = make([]int64, 0, s.size)
		}
	}
}

// mergeLess orders merge cursors by (key, run index): runs are created in
// input order, so the index tie-break reproduces the stable sort's order for
// equal keys. Exhausted cursors and padding indices sort last.
func (s *BatchSort) mergeLess(a, b int) bool {
	var ca, cb *colCursor
	if a < len(s.cursors) {
		ca = s.cursors[a]
	}
	if b < len(s.cursors) {
		cb = s.cursors[b]
	}
	if ca == nil || ca.done {
		return false
	}
	if cb == nil || cb.done {
		return true
	}
	ka, kb := ca.cols[s.idx][ca.pos], cb.cols[s.idx][cb.pos]
	if ka != kb {
		return ka < kb
	}
	return a < b
}

// NextBatch implements BatchOperator: in-memory batches are sub-slices of
// the sorted columns (no copying after the sort); spilled batches are merged
// from the runs into reused output buffers.
func (s *BatchSort) NextBatch() (*Batch, bool) {
	if !s.sorted {
		s.sort()
	}
	if s.lt != nil {
		return s.nextMerged()
	}
	if s.pos >= s.n {
		return nil, false
	}
	end := s.pos + s.size
	if end > s.n {
		end = s.n
	}
	for c := range s.cols {
		s.out.Cols[c] = s.cols[c][s.pos:end]
	}
	s.out.Sel = nil
	s.pos = end
	return &s.out, true
}

// nextMerged pulls the next output batch from the loser-tree merge over the
// spilled sorted runs.
//
//statcheck:hot
func (s *BatchSort) nextMerged() (*Batch, bool) {
	nc := len(s.bufs)
	for c := range s.bufs {
		s.bufs[c] = s.bufs[c][:0]
	}
	emitted := 0
	for emitted < s.size {
		w := s.lt.winner()
		cur := s.cursors[w]
		if cur.done {
			break
		}
		for c := 0; c < nc; c++ {
			s.bufs[c] = append(s.bufs[c], cur.cols[c][cur.pos])
		}
		cur.advance()
		s.lt.fix()
		emitted++
	}
	if emitted == 0 {
		return nil, false
	}
	copy(s.out.Cols, s.bufs)
	s.out.Sel = nil
	return &s.out, true
}

// Reset implements BatchOperator: the sorted data is retained and only the
// output cursor rewinds, matching the original row sort's contract. In spill
// mode the runs are retained and the merge restarts over fresh cursors.
func (s *BatchSort) Reset() {
	s.pos = 0
	if s.lt != nil {
		for _, c := range s.cursors {
			if !c.done {
				if err := c.rd.Close(); err != nil {
					spillFail("close sorted run", err)
				}
			}
		}
		s.openMerge()
	}
}

// BatchMergeJoin equi-joins two batch streams sorted ascending on their single
// join columns. Duplicate-key runs on the left are detected per batch and
// buffered column-wise (runs may span batch boundaries), so pairing a right
// row with a run of k matches costs one memcopy per left column instead of k
// row copies. Matches are emitted per right row in left-input order — the same
// output sequence as the row-at-a-time merge join it replaces.
type BatchMergeJoin struct {
	left, right BatchOperator
	lIdx, rIdx  int
	cols        []string
	nl, nr      int
	size        int

	started    bool
	lb, rb     *Batch
	lpos, rpos int // logical positions within lb/rb

	runCols [][]int64 // buffered left run: rows sharing runKey
	haveRun bool
	runKey  int64
	emit    int  // next run row to pair with the in-flight right row
	rrow    int  // physical row of the in-flight right probe
	pairing bool // currently emitting run x right-row pairs

	bufs [][]int64
	out  Batch
}

// NewBatchMergeJoin joins two batch inputs sorted ascending on leftCol and
// rightCol respectively, with an adaptive batch size derived from the output
// width.
func NewBatchMergeJoin(left, right BatchOperator, leftCol, rightCol string) (*BatchMergeJoin, error) {
	return NewBatchMergeJoinSize(left, right, leftCol, rightCol, 0)
}

// NewBatchMergeJoinSize is NewBatchMergeJoin with an explicit batch size
// (0 = adaptive).
func NewBatchMergeJoinSize(left, right BatchOperator, leftCol, rightCol string, batchSize int) (*BatchMergeJoin, error) {
	li, err := columnIndex(left.Columns(), leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := columnIndex(right.Columns(), rightCol)
	if err != nil {
		return nil, err
	}
	j := &BatchMergeJoin{left: left, right: right, lIdx: li, rIdx: ri}
	j.cols = append(append([]string(nil), left.Columns()...), right.Columns()...)
	j.nl, j.nr = len(left.Columns()), len(right.Columns())
	if batchSize <= 0 {
		batchSize = AdaptiveBatchSize(len(j.cols))
	}
	j.size = batchSize
	j.runCols = make([][]int64, j.nl)
	j.bufs = make([][]int64, len(j.cols))
	for i := range j.bufs {
		j.bufs[i] = make([]int64, 0, j.size)
	}
	j.out.Cols = make([][]int64, len(j.cols))
	return j, nil
}

// Columns implements BatchOperator.
func (j *BatchMergeJoin) Columns() []string { return j.cols }

// pullLeft fetches the next non-empty left batch (nil when exhausted).
func (j *BatchMergeJoin) pullLeft() {
	for {
		b, ok := j.left.NextBatch()
		if !ok {
			j.lb = nil
			return
		}
		if b.NumRows() > 0 {
			j.lb, j.lpos = b, 0
			return
		}
	}
}

// pullRight fetches the next non-empty right batch (nil when exhausted).
func (j *BatchMergeJoin) pullRight() {
	for {
		b, ok := j.right.NextBatch()
		if !ok {
			j.rb = nil
			return
		}
		if b.NumRows() > 0 {
			j.rb, j.rpos = b, 0
			return
		}
	}
}

func (j *BatchMergeJoin) leftKey() int64 {
	r := j.lpos
	if j.lb.Sel != nil {
		r = int(j.lb.Sel[j.lpos])
	}
	return j.lb.Cols[j.lIdx][r]
}

func (j *BatchMergeJoin) rightKey() int64 {
	r := j.rpos
	if j.rb.Sel != nil {
		r = int(j.rb.Sel[j.rpos])
	}
	return j.rb.Cols[j.rIdx][r]
}

func (j *BatchMergeJoin) advanceLeft() {
	j.lpos++
	if j.lpos >= j.lb.NumRows() {
		j.pullLeft()
	}
}

func (j *BatchMergeJoin) advanceRight() {
	j.rpos++
	if j.rpos >= j.rb.NumRows() {
		j.pullRight()
	}
}

// beginPair starts pairing the current right row against the buffered run.
func (j *BatchMergeJoin) beginPair() {
	r := j.rpos
	if j.rb.Sel != nil {
		r = int(j.rb.Sel[j.rpos])
	}
	j.rrow = r
	j.emit = 0
	j.pairing = true
}

func (j *BatchMergeJoin) clearRun() {
	for c := range j.runCols {
		j.runCols[c] = j.runCols[c][:0]
	}
	j.haveRun = false
	j.pairing = false
}

// collectRun buffers every remaining left row whose key equals key, advancing
// the left cursor past the run. Within a batch the run extent is found by
// scanning the key column once and each column is appended with one copy.
//
//statcheck:hot
func (j *BatchMergeJoin) collectRun(key int64) {
	for c := range j.runCols {
		j.runCols[c] = j.runCols[c][:0]
	}
	j.runKey = key
	j.haveRun = true
	for j.lb != nil {
		b := j.lb
		kcol := b.Cols[j.lIdx]
		if b.Sel == nil {
			start := j.lpos
			n := len(b.Cols[0])
			end := start
			for end < n && kcol[end] == key {
				end++
			}
			if end > start {
				for c := 0; c < j.nl; c++ {
					j.runCols[c] = append(j.runCols[c], b.Cols[c][start:end]...)
				}
				j.lpos = end
			}
			if end < n {
				return // run ended inside this batch
			}
		} else {
			n := len(b.Sel)
			for j.lpos < n {
				r := int(b.Sel[j.lpos])
				if kcol[r] != key {
					return
				}
				for c := 0; c < j.nl; c++ {
					j.runCols[c] = append(j.runCols[c], b.Cols[c][r])
				}
				j.lpos++
			}
		}
		j.pullLeft()
	}
}

// NextBatch implements BatchOperator. Returned batches hold up to the
// configured batch size and are reused across calls; a duplicate-key cross
// product larger than a batch pauses and resumes across calls.
//
//statcheck:hot
func (j *BatchMergeJoin) NextBatch() (*Batch, bool) {
	if !j.started {
		j.pullLeft()
		j.pullRight()
		j.started = true
	}
	for i := range j.bufs {
		j.bufs[i] = j.bufs[i][:0]
	}
	emitted := 0
	for {
		if j.pairing {
			runLen := len(j.runCols[0])
			take := runLen - j.emit
			if space := j.size - emitted; take > space {
				take = space
			}
			for c := 0; c < j.nl; c++ {
				j.bufs[c] = append(j.bufs[c], j.runCols[c][j.emit:j.emit+take]...)
			}
			for c := 0; c < j.nr; c++ {
				v := j.rb.Cols[c][j.rrow]
				buf := j.bufs[j.nl+c]
				for k := 0; k < take; k++ {
					buf = append(buf, v)
				}
				j.bufs[j.nl+c] = buf
			}
			j.emit += take
			emitted += take
			if j.emit < runLen {
				return j.flush(), true // output batch full mid-run
			}
			// Done pairing this right row: advance right and re-pair while the
			// key still matches the buffered run.
			j.pairing = false
			j.advanceRight()
			if j.rb != nil && j.rightKey() == j.runKey {
				j.beginPair()
			} else {
				j.clearRun()
			}
			if emitted >= j.size {
				return j.flush(), true
			}
			continue
		}
		if j.lb == nil || j.rb == nil {
			if emitted > 0 {
				return j.flush(), true
			}
			return nil, false
		}
		lk, rk := j.leftKey(), j.rightKey()
		switch {
		case lk < rk:
			j.advanceLeft()
		case lk > rk:
			j.advanceRight()
		default:
			j.collectRun(lk)
			j.beginPair()
		}
	}
}

func (j *BatchMergeJoin) flush() *Batch {
	copy(j.out.Cols, j.bufs)
	j.out.Sel = nil
	return &j.out
}

// Reset implements BatchOperator: both inputs rewind and all merge state is
// cleared.
func (j *BatchMergeJoin) Reset() {
	j.left.Reset()
	j.right.Reset()
	j.started = false
	j.lb, j.rb = nil, nil
	j.lpos, j.rpos = 0, 0
	j.clearRun()
}
