package exec

import (
	"sort"
)

// This file holds the batch-native sort and merge-join operators. Both used to
// run row-at-a-time behind the Rows/Batches adapters, which cost a transpose
// on entry and exit plus a row copy per advance; here Sort argsorts an index
// permutation over materialized column vectors and gathers each column once,
// and MergeJoin merges two sorted batch streams with run detection for
// duplicate keys, emitting column batches directly. The row Sort/MergeJoin
// types in operators.go are thin row views over these.

// BatchSort materializes its input column-wise and sorts it by one column
// ascending. The sort is stable: rows with equal keys keep their input order,
// matching the row-at-a-time sort it replaces bit for bit. Sorting argsorts an
// index permutation over the key column and then gathers every column once,
// so no row-major intermediate ever exists.
type BatchSort struct {
	in   BatchOperator
	col  string
	idx  int
	size int

	sorted bool
	cols   [][]int64 // materialized, sorted columns
	n      int
	pos    int
	out    Batch
}

// NewBatchSort sorts in by col ascending, with an adaptive batch size derived
// from the output width.
func NewBatchSort(in BatchOperator, col string) (*BatchSort, error) {
	return NewBatchSortSize(in, col, 0)
}

// NewBatchSortSize is NewBatchSort with an explicit batch size (0 = adaptive).
func NewBatchSortSize(in BatchOperator, col string, batchSize int) (*BatchSort, error) {
	i, err := columnIndex(in.Columns(), col)
	if err != nil {
		return nil, err
	}
	if batchSize <= 0 {
		batchSize = AdaptiveBatchSize(len(in.Columns()))
	}
	s := &BatchSort{in: in, col: col, idx: i, size: batchSize}
	s.out.Cols = make([][]int64, len(in.Columns()))
	return s, nil
}

// Columns implements BatchOperator.
func (s *BatchSort) Columns() []string { return s.in.Columns() }

// sort drains the input into column buffers, argsorts an index permutation by
// the key column, and gathers each column through the permutation. Presorted
// inputs are detected and served as-is (no permutation, no gather).
func (s *BatchSort) sort() {
	nc := len(s.out.Cols)
	cols := make([][]int64, nc)
	for {
		b, ok := s.in.NextBatch()
		if !ok {
			break
		}
		if b.Sel != nil {
			for c, col := range b.Cols {
				for _, r := range b.Sel {
					cols[c] = append(cols[c], col[r])
				}
			}
		} else {
			for c, col := range b.Cols {
				cols[c] = append(cols[c], col...)
			}
		}
	}
	s.n = 0
	if nc > 0 {
		s.n = len(cols[0])
	}
	key := []int64(nil)
	if nc > 0 {
		key = cols[s.idx]
	}
	presorted := true
	for i := 1; i < s.n; i++ {
		if key[i] < key[i-1] {
			presorted = false
			break
		}
	}
	if presorted {
		s.cols = cols
		s.sorted = true
		return
	}
	perm := make([]int32, s.n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(i, j int) bool { return key[perm[i]] < key[perm[j]] })
	s.cols = make([][]int64, nc)
	for c := range cols {
		src := cols[c]
		dst := make([]int64, s.n)
		for i, p := range perm {
			dst[i] = src[p]
		}
		s.cols[c] = dst
	}
	s.sorted = true
}

// NextBatch implements BatchOperator: batches are sub-slices of the sorted
// columns (no copying after the sort).
func (s *BatchSort) NextBatch() (*Batch, bool) {
	if !s.sorted {
		s.sort()
	}
	if s.pos >= s.n {
		return nil, false
	}
	end := s.pos + s.size
	if end > s.n {
		end = s.n
	}
	for c := range s.cols {
		s.out.Cols[c] = s.cols[c][s.pos:end]
	}
	s.out.Sel = nil
	s.pos = end
	return &s.out, true
}

// Reset implements BatchOperator: the sorted data is retained and only the
// output cursor rewinds, matching the original row sort's contract.
func (s *BatchSort) Reset() { s.pos = 0 }

// BatchMergeJoin equi-joins two batch streams sorted ascending on their single
// join columns. Duplicate-key runs on the left are detected per batch and
// buffered column-wise (runs may span batch boundaries), so pairing a right
// row with a run of k matches costs one memcopy per left column instead of k
// row copies. Matches are emitted per right row in left-input order — the same
// output sequence as the row-at-a-time merge join it replaces.
type BatchMergeJoin struct {
	left, right BatchOperator
	lIdx, rIdx  int
	cols        []string
	nl, nr      int
	size        int

	started    bool
	lb, rb     *Batch
	lpos, rpos int // logical positions within lb/rb

	runCols [][]int64 // buffered left run: rows sharing runKey
	haveRun bool
	runKey  int64
	emit    int  // next run row to pair with the in-flight right row
	rrow    int  // physical row of the in-flight right probe
	pairing bool // currently emitting run x right-row pairs

	bufs [][]int64
	out  Batch
}

// NewBatchMergeJoin joins two batch inputs sorted ascending on leftCol and
// rightCol respectively, with an adaptive batch size derived from the output
// width.
func NewBatchMergeJoin(left, right BatchOperator, leftCol, rightCol string) (*BatchMergeJoin, error) {
	return NewBatchMergeJoinSize(left, right, leftCol, rightCol, 0)
}

// NewBatchMergeJoinSize is NewBatchMergeJoin with an explicit batch size
// (0 = adaptive).
func NewBatchMergeJoinSize(left, right BatchOperator, leftCol, rightCol string, batchSize int) (*BatchMergeJoin, error) {
	li, err := columnIndex(left.Columns(), leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := columnIndex(right.Columns(), rightCol)
	if err != nil {
		return nil, err
	}
	j := &BatchMergeJoin{left: left, right: right, lIdx: li, rIdx: ri}
	j.cols = append(append([]string(nil), left.Columns()...), right.Columns()...)
	j.nl, j.nr = len(left.Columns()), len(right.Columns())
	if batchSize <= 0 {
		batchSize = AdaptiveBatchSize(len(j.cols))
	}
	j.size = batchSize
	j.runCols = make([][]int64, j.nl)
	j.bufs = make([][]int64, len(j.cols))
	for i := range j.bufs {
		j.bufs[i] = make([]int64, 0, j.size)
	}
	j.out.Cols = make([][]int64, len(j.cols))
	return j, nil
}

// Columns implements BatchOperator.
func (j *BatchMergeJoin) Columns() []string { return j.cols }

// pullLeft fetches the next non-empty left batch (nil when exhausted).
func (j *BatchMergeJoin) pullLeft() {
	for {
		b, ok := j.left.NextBatch()
		if !ok {
			j.lb = nil
			return
		}
		if b.NumRows() > 0 {
			j.lb, j.lpos = b, 0
			return
		}
	}
}

// pullRight fetches the next non-empty right batch (nil when exhausted).
func (j *BatchMergeJoin) pullRight() {
	for {
		b, ok := j.right.NextBatch()
		if !ok {
			j.rb = nil
			return
		}
		if b.NumRows() > 0 {
			j.rb, j.rpos = b, 0
			return
		}
	}
}

func (j *BatchMergeJoin) leftKey() int64 {
	r := j.lpos
	if j.lb.Sel != nil {
		r = int(j.lb.Sel[j.lpos])
	}
	return j.lb.Cols[j.lIdx][r]
}

func (j *BatchMergeJoin) rightKey() int64 {
	r := j.rpos
	if j.rb.Sel != nil {
		r = int(j.rb.Sel[j.rpos])
	}
	return j.rb.Cols[j.rIdx][r]
}

func (j *BatchMergeJoin) advanceLeft() {
	j.lpos++
	if j.lpos >= j.lb.NumRows() {
		j.pullLeft()
	}
}

func (j *BatchMergeJoin) advanceRight() {
	j.rpos++
	if j.rpos >= j.rb.NumRows() {
		j.pullRight()
	}
}

// beginPair starts pairing the current right row against the buffered run.
func (j *BatchMergeJoin) beginPair() {
	r := j.rpos
	if j.rb.Sel != nil {
		r = int(j.rb.Sel[j.rpos])
	}
	j.rrow = r
	j.emit = 0
	j.pairing = true
}

func (j *BatchMergeJoin) clearRun() {
	for c := range j.runCols {
		j.runCols[c] = j.runCols[c][:0]
	}
	j.haveRun = false
	j.pairing = false
}

// collectRun buffers every remaining left row whose key equals key, advancing
// the left cursor past the run. Within a batch the run extent is found by
// scanning the key column once and each column is appended with one copy.
//
//statcheck:hot
func (j *BatchMergeJoin) collectRun(key int64) {
	for c := range j.runCols {
		j.runCols[c] = j.runCols[c][:0]
	}
	j.runKey = key
	j.haveRun = true
	for j.lb != nil {
		b := j.lb
		kcol := b.Cols[j.lIdx]
		if b.Sel == nil {
			start := j.lpos
			n := len(b.Cols[0])
			end := start
			for end < n && kcol[end] == key {
				end++
			}
			if end > start {
				for c := 0; c < j.nl; c++ {
					j.runCols[c] = append(j.runCols[c], b.Cols[c][start:end]...)
				}
				j.lpos = end
			}
			if end < n {
				return // run ended inside this batch
			}
		} else {
			n := len(b.Sel)
			for j.lpos < n {
				r := int(b.Sel[j.lpos])
				if kcol[r] != key {
					return
				}
				for c := 0; c < j.nl; c++ {
					j.runCols[c] = append(j.runCols[c], b.Cols[c][r])
				}
				j.lpos++
			}
		}
		j.pullLeft()
	}
}

// NextBatch implements BatchOperator. Returned batches hold up to the
// configured batch size and are reused across calls; a duplicate-key cross
// product larger than a batch pauses and resumes across calls.
//
//statcheck:hot
func (j *BatchMergeJoin) NextBatch() (*Batch, bool) {
	if !j.started {
		j.pullLeft()
		j.pullRight()
		j.started = true
	}
	for i := range j.bufs {
		j.bufs[i] = j.bufs[i][:0]
	}
	emitted := 0
	for {
		if j.pairing {
			runLen := len(j.runCols[0])
			take := runLen - j.emit
			if space := j.size - emitted; take > space {
				take = space
			}
			for c := 0; c < j.nl; c++ {
				j.bufs[c] = append(j.bufs[c], j.runCols[c][j.emit:j.emit+take]...)
			}
			for c := 0; c < j.nr; c++ {
				v := j.rb.Cols[c][j.rrow]
				buf := j.bufs[j.nl+c]
				for k := 0; k < take; k++ {
					buf = append(buf, v)
				}
				j.bufs[j.nl+c] = buf
			}
			j.emit += take
			emitted += take
			if j.emit < runLen {
				return j.flush(), true // output batch full mid-run
			}
			// Done pairing this right row: advance right and re-pair while the
			// key still matches the buffered run.
			j.pairing = false
			j.advanceRight()
			if j.rb != nil && j.rightKey() == j.runKey {
				j.beginPair()
			} else {
				j.clearRun()
			}
			if emitted >= j.size {
				return j.flush(), true
			}
			continue
		}
		if j.lb == nil || j.rb == nil {
			if emitted > 0 {
				return j.flush(), true
			}
			return nil, false
		}
		lk, rk := j.leftKey(), j.rightKey()
		switch {
		case lk < rk:
			j.advanceLeft()
		case lk > rk:
			j.advanceRight()
		default:
			j.collectRun(lk)
			j.beginPair()
		}
	}
}

func (j *BatchMergeJoin) flush() *Batch {
	copy(j.out.Cols, j.bufs)
	j.out.Sel = nil
	return &j.out
}

// Reset implements BatchOperator: both inputs rewind and all merge state is
// cleared.
func (j *BatchMergeJoin) Reset() {
	j.left.Reset()
	j.right.Reset()
	j.started = false
	j.lb, j.rb = nil, nil
	j.lpos, j.rpos = 0, 0
	j.clearRun()
}
