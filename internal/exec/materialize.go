package exec

import (
	"fmt"
	"strings"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/mem"
	"github.com/sitstats/sits/internal/query"
)

// Options parameterizes plan execution.
type Options struct {
	// Parallelism is the plan's pool width (see ResolveParallelism): 0 uses
	// one worker per CPU, 1 runs the untouched serial chain, n > 1 runs the
	// probe pipeline as n-wide morsel tasks and bounds the hash-join build
	// fan-out. Plan results (and therefore all derived quantities) are
	// identical at every level.
	Parallelism int
	// BatchSize overrides the rows-per-batch granularity. 0 picks an adaptive
	// size from the plan's total column width (AdaptiveBatchSize), so wide
	// join outputs stay inside L2.
	BatchSize int
	// Gov, when non-nil, budgets the plan's operator memory: hash-join build
	// sides and sort buffers reserve through it and spill (grace partitioning,
	// external merge sort) when denied, and the parallel pipeline's reorder
	// window is accounted against it. Results are identical at any budget.
	Gov *mem.Governor
	// Pool overrides the worker pool the plan forks onto; nil uses the
	// process-wide Default pool.
	Pool *Pool
}

// Materialize drains an operator into a table named name. Qualified column
// names ("R.x") become "R_x" in the result. Rows are buffered column-wise and
// flushed through the table's bulk-append API.
func Materialize(op Operator, name string) (*data.Table, error) {
	// batchify unwraps row views of batch pipelines (Rows, Sort, MergeJoin)
	// so the drain stays column-wise end to end.
	return MaterializeBatch(batchify(op), name)
}

// MaterializeBatch drains a batch operator into a table named name,
// bulk-appending each batch (one copy per column per batch).
func MaterializeBatch(op BatchOperator, name string) (*data.Table, error) {
	cols := make([]string, len(op.Columns()))
	for i, c := range op.Columns() {
		cols[i] = strings.ReplaceAll(c, ".", "_")
	}
	t, err := data.NewTable(name, cols...)
	if err != nil {
		return nil, err
	}
	scratch := make([][]int64, len(cols))
	for {
		b, ok := op.NextBatch()
		if !ok {
			break
		}
		out := b.Cols
		if b.Sel != nil {
			// Compact selected rows into reusable scratch columns.
			for i, c := range b.Cols {
				s := scratch[i][:0]
				for _, r := range b.Sel {
					s = append(s, c[r])
				}
				scratch[i] = s
			}
			out = scratch
		}
		t.Grow(len(out[0]))
		if err := t.AppendBatch(out); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Plan builds an operator tree evaluating the generating expression and
// returns its row view; see PlanBatch for the underlying vectorized pipeline.
func Plan(cat *data.Catalog, e *query.Expr) (Operator, error) {
	op, err := PlanBatch(cat, e, Options{})
	if err != nil {
		return nil, err
	}
	return NewRows(op), nil
}

// PlanBatch builds a vectorized operator tree evaluating the generating
// expression with hash joins: tables are joined in a connectivity-preserving
// order starting from the expression's first table, so every join has at
// least one applicable predicate. Output columns are qualified names ("R.x").
//
// At Parallelism != 1 the probe-side chain (scan of the first table, then
// every join probe and equality filter) runs as a morsel-driven Pipeline on
// the shared pool: each stage is recorded as a builder that re-instantiates
// it over a morsel's scan range (joins via ProbeClone, sharing one built
// hash table). The emitted row stream is bit-identical to the serial chain.
func PlanBatch(cat *data.Catalog, e *query.Expr, opts Options) (BatchOperator, error) {
	tables := e.Tables()
	if opts.BatchSize <= 0 {
		// Size batches from the plan's total output width: every join in the
		// left-deep chain carries the accumulated columns of all tables
		// joined so far, so the final width is what must stay inside L2.
		width := 0
		for _, name := range tables {
			t, err := cat.Table(name)
			if err != nil {
				return nil, err
			}
			width += t.NumCols()
		}
		opts.BatchSize = AdaptiveBatchSize(width)
	}
	if len(tables) == 1 {
		t, err := cat.Table(tables[0])
		if err != nil {
			return nil, err
		}
		return NewBatchScanSize(t, opts.BatchSize), nil
	}
	joined := map[string]bool{}
	remaining := append([]query.JoinPred(nil), e.Joins()...)

	first, err := cat.Table(tables[0])
	if err != nil {
		return nil, err
	}
	var root BatchOperator = NewBatchScanSize(first, opts.BatchSize)
	joined[tables[0]] = true
	// Per-morsel stage builders, recorded alongside the serial chain so the
	// Pipeline can re-instantiate the chain over each morsel's scan range.
	var stages []stageBuilder

	for len(remaining) > 0 {
		progress := false
		for i, p := range remaining {
			lIn, rIn := joined[p.LeftTable], joined[p.RightTable]
			switch {
			case lIn && rIn:
				// Both sides already joined: apply as a filter (extra
				// predicate between an already-connected table pair).
				lc, rc := p.LeftTable+"."+p.LeftAttr, p.RightTable+"."+p.RightAttr
				f, err := equalityFilter(root, lc, rc)
				if err != nil {
					return nil, err
				}
				root = f
				stages = append(stages, func(in BatchOperator) (BatchOperator, error) {
					return equalityFilter(in, lc, rc)
				})
			case lIn || rIn:
				newTable := p.RightTable
				probeCol, buildCol := p.LeftTable+"."+p.LeftAttr, p.RightTable+"."+p.RightAttr
				if rIn {
					newTable = p.LeftTable
					probeCol, buildCol = p.RightTable+"."+p.RightAttr, p.LeftTable+"."+p.LeftAttr
				}
				t, err := cat.Table(newTable)
				if err != nil {
					return nil, err
				}
				// Build on the new base table, probe with the accumulated
				// intermediate result.
				j, err := NewVecHashJoinMem(NewBatchScanSize(t, opts.BatchSize), root, opts.Parallelism,
					opts.BatchSize, opts.Gov, JoinCond{LeftCol: buildCol, RightCol: probeCol})
				if err != nil {
					return nil, err
				}
				root = j
				stages = append(stages, func(in BatchOperator) (BatchOperator, error) {
					return j.ProbeClone(in)
				})
				joined[newTable] = true
			default:
				continue
			}
			remaining = append(remaining[:i], remaining[i+1:]...)
			progress = true
			break
		}
		if !progress {
			return nil, fmt.Errorf("exec: expression %q is not connected", e.String())
		}
	}
	if width := ResolveParallelism(opts.Parallelism); width > 1 && len(stages) > 0 {
		build := func(src BatchOperator) (BatchOperator, error) {
			op := src
			for _, s := range stages {
				var err error
				if op, err = s(op); err != nil {
					return nil, err
				}
			}
			return op, nil
		}
		return NewPipeline(opts.Pool, first, width, opts.BatchSize, build, root, opts.Gov), nil
	}
	return root, nil
}

func equalityFilter(in BatchOperator, colA, colB string) (BatchOperator, error) {
	ia, err := columnIndex(in.Columns(), colA)
	if err != nil {
		return nil, err
	}
	ib, err := columnIndex(in.Columns(), colB)
	if err != nil {
		return nil, err
	}
	return NewBatchFilter(in, func(cols [][]int64, r int) bool { return cols[ia][r] == cols[ib][r] }), nil
}

// AttrValues evaluates the generating expression and returns the values of
// table.attr in its result — the exact distribution pi_{table.attr}(Q) a SIT
// approximates. This is the ground truth used by the accuracy experiments and
// by SweepExact's reference tests.
func AttrValues(cat *data.Catalog, e *query.Expr, table, attr string) ([]int64, error) {
	return AttrValuesOpts(cat, e, table, attr, Options{})
}

// AttrValuesOpts is AttrValues with explicit execution options.
func AttrValuesOpts(cat *data.Catalog, e *query.Expr, table, attr string, opts Options) ([]int64, error) {
	op, err := PlanBatch(cat, e, opts)
	if err != nil {
		return nil, err
	}
	defer ClosePlan(op)
	idx, err := columnIndex(op.Columns(), table+"."+attr)
	if err != nil {
		return nil, err
	}
	var out []int64
	for {
		b, ok := op.NextBatch()
		if !ok {
			break
		}
		col := b.Cols[idx]
		if b.Sel == nil {
			out = append(out, col...)
		} else {
			for _, r := range b.Sel {
				out = append(out, col[r])
			}
		}
	}
	return out, nil
}

// Cardinality evaluates the expression and counts result rows.
func Cardinality(cat *data.Catalog, e *query.Expr) (int64, error) {
	return CardinalityOpts(cat, e, Options{})
}

// CardinalityOpts is Cardinality with explicit execution options.
func CardinalityOpts(cat *data.Catalog, e *query.Expr, opts Options) (int64, error) {
	op, err := PlanBatch(cat, e, opts)
	if err != nil {
		return 0, err
	}
	defer ClosePlan(op)
	var n int64
	for {
		b, ok := op.NextBatch()
		if !ok {
			return n, nil
		}
		n += int64(b.NumRows())
	}
}

// RangeCardinality evaluates |sigma_{lo <= table.attr <= hi}(Q)| exactly.
func RangeCardinality(cat *data.Catalog, e *query.Expr, table, attr string, lo, hi int64) (int64, error) {
	return RangeCardinalityOpts(cat, e, table, attr, lo, hi, Options{})
}

// RangeCardinalityOpts is RangeCardinality with explicit execution options.
// The range predicate is counted directly over the target column of each
// batch — no filter operator, no selection vector, no row materialization.
func RangeCardinalityOpts(cat *data.Catalog, e *query.Expr, table, attr string, lo, hi int64, opts Options) (int64, error) {
	op, err := PlanBatch(cat, e, opts)
	if err != nil {
		return 0, err
	}
	defer ClosePlan(op)
	idx, err := columnIndex(op.Columns(), table+"."+attr)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		b, ok := op.NextBatch()
		if !ok {
			return n, nil
		}
		col := b.Cols[idx]
		if b.Sel == nil {
			for _, v := range col {
				if v >= lo && v <= hi {
					n++
				}
			}
		} else {
			for _, r := range b.Sel {
				if v := col[r]; v >= lo && v <= hi {
					n++
				}
			}
		}
	}
}
