package exec

import (
	"fmt"
	"strings"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/query"
)

// Materialize drains an operator into a table named name. Qualified column
// names ("R.x") become "R_x" in the result.
func Materialize(op Operator, name string) (*data.Table, error) {
	cols := make([]string, len(op.Columns()))
	for i, c := range op.Columns() {
		cols[i] = strings.ReplaceAll(c, ".", "_")
	}
	t, err := data.NewTable(name, cols...)
	if err != nil {
		return nil, err
	}
	for {
		row, ok := op.Next()
		if !ok {
			break
		}
		if err := t.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Plan builds an operator tree evaluating the generating expression with hash
// joins: tables are joined in a connectivity-preserving order starting from
// the expression's first table, so every join has at least one applicable
// predicate. Output columns are qualified names ("R.x").
func Plan(cat *data.Catalog, e *query.Expr) (Operator, error) {
	tables := e.Tables()
	if len(tables) == 1 {
		t, err := cat.Table(tables[0])
		if err != nil {
			return nil, err
		}
		return NewTableScan(t), nil
	}
	joined := map[string]bool{}
	remaining := append([]query.JoinPred(nil), e.Joins()...)

	first, err := cat.Table(tables[0])
	if err != nil {
		return nil, err
	}
	var root Operator = NewTableScan(first)
	joined[tables[0]] = true

	for len(remaining) > 0 {
		progress := false
		for i, p := range remaining {
			lIn, rIn := joined[p.LeftTable], joined[p.RightTable]
			switch {
			case lIn && rIn:
				// Both sides already joined: apply as a filter (extra
				// predicate between an already-connected table pair).
				f, err := equalityFilter(root, p.LeftTable+"."+p.LeftAttr, p.RightTable+"."+p.RightAttr)
				if err != nil {
					return nil, err
				}
				root = f
			case lIn || rIn:
				newTable := p.RightTable
				probeCol, buildCol := p.LeftTable+"."+p.LeftAttr, p.RightTable+"."+p.RightAttr
				if rIn {
					newTable = p.LeftTable
					probeCol, buildCol = p.RightTable+"."+p.RightAttr, p.LeftTable+"."+p.LeftAttr
				}
				t, err := cat.Table(newTable)
				if err != nil {
					return nil, err
				}
				// Build on the new base table, probe with the accumulated
				// intermediate result.
				j, err := NewHashJoin(NewTableScan(t), root, JoinCond{LeftCol: buildCol, RightCol: probeCol})
				if err != nil {
					return nil, err
				}
				root = j
				joined[newTable] = true
			default:
				continue
			}
			remaining = append(remaining[:i], remaining[i+1:]...)
			progress = true
			break
		}
		if !progress {
			return nil, fmt.Errorf("exec: expression %q is not connected", e.String())
		}
	}
	return root, nil
}

func equalityFilter(in Operator, colA, colB string) (Operator, error) {
	ia, err := columnIndex(in.Columns(), colA)
	if err != nil {
		return nil, err
	}
	ib, err := columnIndex(in.Columns(), colB)
	if err != nil {
		return nil, err
	}
	return NewFilter(in, func(row []int64) bool { return row[ia] == row[ib] }), nil
}

// AttrValues evaluates the generating expression and returns the values of
// table.attr in its result — the exact distribution pi_{table.attr}(Q) a SIT
// approximates. This is the ground truth used by the accuracy experiments and
// by SweepExact's reference tests.
func AttrValues(cat *data.Catalog, e *query.Expr, table, attr string) ([]int64, error) {
	op, err := Plan(cat, e)
	if err != nil {
		return nil, err
	}
	col := table + "." + attr
	idx, err := columnIndex(op.Columns(), col)
	if err != nil {
		return nil, err
	}
	var out []int64
	for {
		row, ok := op.Next()
		if !ok {
			break
		}
		out = append(out, row[idx])
	}
	return out, nil
}

// Cardinality evaluates the expression and counts result rows.
func Cardinality(cat *data.Catalog, e *query.Expr) (int64, error) {
	op, err := Plan(cat, e)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		if _, ok := op.Next(); !ok {
			return n, nil
		}
		n++
	}
}

// RangeCardinality evaluates |sigma_{lo <= table.attr <= hi}(Q)| exactly.
func RangeCardinality(cat *data.Catalog, e *query.Expr, table, attr string, lo, hi int64) (int64, error) {
	op, err := Plan(cat, e)
	if err != nil {
		return 0, err
	}
	f, err := NewRangeFilter(op, table+"."+attr, lo, hi)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		if _, ok := f.Next(); !ok {
			return n, nil
		}
		n++
	}
}
