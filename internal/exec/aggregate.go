package exec

import (
	"fmt"
	"sort"
)

// Distinct removes duplicate rows from its input (set semantics). It buffers
// seen rows in memory.
type Distinct struct {
	in   Operator
	seen map[string]bool
}

// NewDistinct wraps in with duplicate elimination over whole rows.
func NewDistinct(in Operator) *Distinct {
	return &Distinct{in: in, seen: map[string]bool{}}
}

// Columns implements Operator.
func (d *Distinct) Columns() []string { return d.in.Columns() }

// Next implements Operator.
func (d *Distinct) Next() ([]int64, bool) {
	for {
		row, ok := d.in.Next()
		if !ok {
			return nil, false
		}
		key := rowKey(row)
		if d.seen[key] {
			continue
		}
		d.seen[key] = true
		return row, true
	}
}

// Reset implements Operator.
func (d *Distinct) Reset() {
	d.in.Reset()
	d.seen = map[string]bool{}
}

func rowKey(row []int64) string {
	buf := make([]byte, 0, len(row)*8)
	for _, v := range row {
		u := uint64(v)
		buf = append(buf,
			byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
	return string(buf)
}

// GroupCount is a hash aggregation producing one row per distinct group key
// with its occurrence count appended as the final column "count". Output rows
// are ordered by group key so results are deterministic.
type GroupCount struct {
	in     Operator
	keyIdx []int
	cols   []string

	built  bool
	groups [][]int64 // group key values ++ count
	pos    int
}

// NewGroupCount groups in by the named columns and counts rows per group.
func NewGroupCount(in Operator, groupBy ...string) (*GroupCount, error) {
	if len(groupBy) == 0 {
		return nil, fmt.Errorf("exec: GroupCount needs at least one grouping column")
	}
	g := &GroupCount{in: in}
	for _, c := range groupBy {
		i, err := columnIndex(in.Columns(), c)
		if err != nil {
			return nil, err
		}
		g.keyIdx = append(g.keyIdx, i)
		g.cols = append(g.cols, c)
	}
	g.cols = append(g.cols, "count")
	return g, nil
}

// Columns implements Operator: the grouping columns plus "count".
func (g *GroupCount) Columns() []string { return g.cols }

func (g *GroupCount) build() {
	counts := map[string]int64{}
	keys := map[string][]int64{}
	for {
		row, ok := g.in.Next()
		if !ok {
			break
		}
		key := make([]int64, len(g.keyIdx))
		for i, idx := range g.keyIdx {
			key[i] = row[idx]
		}
		ks := rowKey(key)
		counts[ks]++
		if _, dup := keys[ks]; !dup {
			keys[ks] = key
		}
	}
	for ks, key := range keys {
		g.groups = append(g.groups, append(key, counts[ks]))
	}
	sort.Slice(g.groups, func(i, j int) bool {
		a, b := g.groups[i], g.groups[j]
		for k := 0; k < len(a)-1; k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	g.built = true
}

// Next implements Operator.
func (g *GroupCount) Next() ([]int64, bool) {
	if !g.built {
		g.build()
	}
	if g.pos >= len(g.groups) {
		return nil, false
	}
	row := g.groups[g.pos]
	g.pos++
	return row, true
}

// Reset implements Operator; the aggregation is retained and only the output
// cursor rewinds.
func (g *GroupCount) Reset() { g.pos = 0 }
