package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the executor's shared worker pool. Before it existed,
// parallelism lived in disconnected islands — the shared-scan fan-out, the
// hash-join partition build, the experiment sweeps — each spawning its own
// goroutines and oversubscribing the machine when they nested. The pool puts
// one set of workers (one per CPU, started lazily on first use) under all of
// them: callers fork morsels of work, idle workers steal them, and a blocked
// forker helps execute its own morsels so nested fork-joins can never
// deadlock on a busy pool.
//
// Determinism is the callers' contract, not the pool's: every fork-join runs
// fn(i) for a fixed index set with each index writing to its own slot, so
// results are independent of which worker claims which morsel, at any pool
// width. The pool only schedules.

// Task is one unit of pool work.
type Task func()

// Pool is a work-stealing worker pool. Each worker owns a deque: the owner
// pushes and pops at the newest end, idle workers steal from the oldest end,
// and external submissions are dealt round-robin across the deques. Workers
// are spawned lazily on the first submission and park on a condition
// variable when every deque is empty.
type Pool struct {
	width int

	mu      sync.Mutex
	cond    *sync.Cond
	deques  [][]Task // per-worker deques; owner pops newest, thieves steal oldest
	rr      int      // round-robin cursor for external submissions
	spawned bool
	closed  bool
	running int // tasks currently executing
	wg      sync.WaitGroup
}

// NewPool creates a pool of `width` workers (minimum 1). Workers are not
// started until the first Submit.
func NewPool(width int) *Pool {
	if width < 1 {
		width = 1
	}
	p := &Pool{width: width, deques: make([][]Task, width)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide pool: one worker per CPU, started lazily,
// never closed. Every executor fan-out — morsel pipelines, hash-join builds,
// shared scans, experiment sweeps — runs on this one pool unless handed an
// explicit private pool, so nested parallel operators share the machine
// instead of multiplying goroutines.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = NewPool(runtime.GOMAXPROCS(0)) })
	return defaultPool
}

// ResolveParallelism maps the engine-wide parallelism knob to a worker
// count: 0 (or negative) means one worker per CPU, n > 0 means exactly n.
// It is the single definition shared by exec.Options, sit.Config, and the
// experiment configs.
func ResolveParallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Width returns the pool's worker count. A nil pool has width 1 (serial).
func (p *Pool) Width() int {
	if p == nil {
		return 1
	}
	return p.width
}

// Submit enqueues t for execution by a pool worker, spawning the workers on
// first use. On a nil or closed pool the task runs inline.
func (p *Pool) Submit(t Task) {
	if t == nil {
		return
	}
	if p == nil {
		t()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		t()
		return
	}
	if !p.spawned {
		p.spawned = true
		p.wg.Add(p.width)
		for w := 0; w < p.width; w++ {
			go p.worker(w)
		}
	}
	p.deques[p.rr] = append(p.deques[p.rr], t)
	p.rr = (p.rr + 1) % p.width
	p.cond.Signal()
	p.mu.Unlock()
}

// worker is one pool worker's loop: run own work newest-first, steal oldest
// work from siblings, park when everything is empty.
func (p *Pool) worker(w int) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		t := p.take(w)
		if t == nil {
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			continue
		}
		p.running++
		p.mu.Unlock()
		t()
		p.mu.Lock()
		p.running--
		if p.running == 0 && p.empty() {
			// Wake Close and Idle-pollers; workers re-check and re-park.
			p.cond.Broadcast()
		}
	}
}

// take pops the newest task of w's own deque, falling back to stealing the
// oldest task of a sibling deque. Called with p.mu held.
func (p *Pool) take(w int) Task {
	if d := p.deques[w]; len(d) > 0 {
		t := d[len(d)-1]
		d[len(d)-1] = nil
		p.deques[w] = d[:len(d)-1]
		return t
	}
	for i := 1; i < p.width; i++ {
		v := (w + i) % p.width
		if d := p.deques[v]; len(d) > 0 {
			t := d[0]
			p.deques[v] = d[1:]
			return t
		}
	}
	return nil
}

// empty reports whether every deque is empty. Called with p.mu held.
func (p *Pool) empty() bool {
	for _, d := range p.deques {
		if len(d) > 0 {
			return false
		}
	}
	return true
}

// Idle reports whether the pool has no queued and no running tasks.
func (p *Pool) Idle() bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running == 0 && p.empty()
}

// Close drains every queued task and stops the workers; it returns once all
// worker goroutines have exited. Submissions after Close run inline. The
// Default pool is never closed.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// fjGroup is one fork-join fan-out. Morsel indices are claimed from an
// atomic counter (the work-stealing granularity: a fast claimer simply takes
// more morsels), completions are counted so the forker can join, and the
// first panic is captured and replayed on the forking goroutine.
type fjGroup struct {
	fn        func(int)
	n         int64
	next      int64
	completed int64
	done      chan struct{}
	panicOnce sync.Once
	panicked  atomic.Bool
	pval      any
}

// runClaims claims and runs morsels until the group is exhausted. It is the
// body of both the helper tasks and the forking caller.
func (g *fjGroup) runClaims() {
	for {
		i := atomic.AddInt64(&g.next, 1) - 1
		if i >= g.n {
			return
		}
		g.call(int(i))
	}
}

func (g *fjGroup) call(i int) {
	defer func() {
		if r := recover(); r != nil {
			g.panicOnce.Do(func() {
				g.pval = r
				g.panicked.Store(true)
			})
		}
		if atomic.AddInt64(&g.completed, 1) == g.n {
			close(g.done)
		}
	}()
	g.fn(i)
}

// ForkJoin runs fn(i) for every i in [0, n) across the pool and returns when
// all calls have completed. The calling goroutine participates (it claims
// morsels like a worker), so nested ForkJoins make progress even when every
// pool worker is busy. A panic in fn is re-raised on the caller after the
// remaining morsels finish. fn must write results only to index-i slots;
// under that contract the outcome is identical at every pool width.
func (p *Pool) ForkJoin(n int, fn func(i int)) { p.ForkJoinWidth(n, 0, fn) }

// ForkJoinWidth is ForkJoin with an explicit concurrency cap: at most
// `width` goroutines (width-1 pool helpers plus the caller) claim morsels
// (<= 0 means the pool's width). The cap bounds concurrency only — results
// never depend on it.
func (p *Pool) ForkJoinWidth(n, width int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if width <= 0 {
		width = p.Width()
	}
	if p == nil || n == 1 || width == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	g := &fjGroup{fn: fn, n: int64(n), done: make(chan struct{})}
	helpers := width - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	for h := 0; h < helpers; h++ {
		p.Submit(g.runClaims)
	}
	g.runClaims()
	<-g.done
	if g.panicked.Load() {
		panic(g.pval)
	}
}
