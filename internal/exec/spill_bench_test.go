package exec

import (
	"testing"

	"github.com/sitstats/sits/internal/mem"
)

// Memory-governed execution benchmarks: each operator runs once with an
// unlimited budget (pure in-memory path) and once with a budget of 25% of
// its working set, so three quarters of the state spills through the run
// store. The gap between the two is the price of spilling; the outputs are
// identical by construction (see spill_test.go). The spilling regime runs
// twice — raw SRN1 runs vs compressed SRN2 runs — and reports the spilled
// byte count and the raw/spilled compression ratio, so the wall-time cost
// and byte savings of spill compression are visible side by side.

// spillRegime is one benchmark configuration: a budget plus a run format.
type spillRegime struct {
	name     string
	budget   int64
	compress bool
}

// spillRegimes returns the benchmark regimes for a working set: unlimited,
// and a quarter of the working set with raw and with compressed runs.
func spillRegimes(workingSet int64) []spillRegime {
	return []spillRegime{
		{"unlimited", 0, true},
		{"quarter-srn1", workingSet / 4, false},
		{"quarter-srn2", workingSet / 4, true},
	}
}

// reportSpill attaches the run store's byte counters to the benchmark.
func reportSpill(b *testing.B, gov *mem.Governor) {
	store, err := gov.Runs()
	if err != nil {
		b.Fatal(err)
	}
	stats := store.Stats()
	if stats.SpilledBytes == 0 {
		b.Fatal("governed run never spilled; the budget regime is not exercised")
	}
	b.ReportMetric(float64(stats.SpilledBytes)/1e6, "spilledMB")
	b.ReportMetric(stats.Ratio(), "compressratio")
}

// BenchmarkGraceJoin measures a 200k x 200k hash join (~2M output rows)
// in-memory vs grace-partitioned with 75% of the build side spilled.
func BenchmarkGraceJoin(b *testing.B) {
	r, s := benchJoinInputs(200_000, 200_000, 20_000)
	ws := int64(r.NumRows()*r.NumCols()) * 8
	for _, reg := range spillRegimes(ws) {
		b.Run(reg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gov := mem.NewGovernor(reg.budget)
				gov.SetSpillCompression(reg.compress)
				j, err := NewVecHashJoinMem(NewBatchScan(r), NewBatchScan(s), 1, 0, gov,
					JoinCond{LeftCol: "R.x", RightCol: "S.y"})
				if err != nil {
					b.Fatal(err)
				}
				var rows int64
				for {
					batch, ok := j.NextBatch()
					if !ok {
						break
					}
					rows += int64(batch.NumRows())
				}
				if reg.budget > 0 {
					reportSpill(b, gov)
				}
				if err := gov.Close(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rows), "outrows")
			}
		})
	}
}

// BenchmarkExternalSort measures sorting a 500k-row scan in-memory vs as an
// external merge sort with 75% of the buffer spilled into sorted runs.
func BenchmarkExternalSort(b *testing.B) {
	tab := benchSortInput(500_000)
	ws := int64(tab.NumRows()*tab.NumCols()) * 8
	for _, reg := range spillRegimes(ws) {
		b.Run(reg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gov := mem.NewGovernor(reg.budget)
				gov.SetSpillCompression(reg.compress)
				s, err := NewBatchSortMem(NewBatchScan(tab), "R.x", 0, gov, nil)
				if err != nil {
					b.Fatal(err)
				}
				var rows int64
				for {
					batch, ok := s.NextBatch()
					if !ok {
						break
					}
					rows += int64(batch.NumRows())
				}
				if reg.budget > 0 {
					reportSpill(b, gov)
				}
				if err := gov.Close(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rows), "outrows")
			}
		})
	}
}

// BenchmarkSortedRunCacheHit measures re-sorting an unchanged base table
// with a shared SortCache (every iteration after the first is a generation
// match serving the cached columns) against the cold path re-sorting from
// scratch. The acceptance bar for this PR is warm/cold >= 5x.
func BenchmarkSortedRunCacheHit(b *testing.B) {
	tab := benchSortInput(500_000)
	drainSort := func(b *testing.B, cache *SortCache) int64 {
		s, err := NewBatchSortMem(NewBatchScan(tab), "R.x", 0, nil, cache)
		if err != nil {
			b.Fatal(err)
		}
		var rows int64
		for {
			batch, ok := s.NextBatch()
			if !ok {
				return rows
			}
			rows += int64(batch.NumRows())
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows := drainSort(b, nil)
			b.ReportMetric(float64(rows), "outrows")
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := NewSortCache()
		drainSort(b, cache) // populate
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows := drainSort(b, cache)
			b.ReportMetric(float64(rows), "outrows")
		}
		hits, _ := cache.Stats()
		if hits < int64(b.N) {
			b.Fatalf("cache served only %d hits over %d iterations", hits, b.N)
		}
	})
}
