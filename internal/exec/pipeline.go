package exec

import (
	"fmt"
	"sync"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/mem"
)

// Pipeline is the morsel-driven parallel executor: it splits a base table
// scan into fixed-size morsels (a few batches each), runs the whole operator
// chain — scan → filter → project → join-probe — over each morsel as one
// pool task, and re-emits the per-morsel outputs in morsel order. Because
// every stage in the chain is row-local (filters and probes map input rows
// to output rows independently of neighbouring morsels) and morsel
// boundaries depend only on the table size, the concatenated output is the
// serial chain's row stream, bit for bit, at every pool width.
//
// Sequence discipline: morsel seq numbers are claimed in ascending order
// under the pipeline mutex; completed outputs park in a bounded reorder
// window (ready[seq]) until the consumer's emit cursor reaches them. The
// consumer never blocks behind an unclaimed morsel — if emit itself is still
// unclaimed the consumer runs it inline, so a pool with zero free workers
// degrades to the serial execution rather than deadlocking.
//
// Pipeline breakers run exactly once, up front: start() builds the morsel-0
// stage chain on the consumer goroutine, which forces every hash-join build
// (ensureBuilt) before any helper spawns. A build side that spilled into
// grace partitioning cannot be probe-cloned (grace output order is a global
// property of one probe stream), so the pipeline detects that during the
// same morsel-0 construction and falls back to the untouched serial chain —
// still bit-identical, just narrower.

// morselBatches is the number of batches per morsel. The morsel size is a
// multiple of the batch size and independent of the worker count, so morsel
// boundaries — and therefore the emitted row stream — are identical at every
// pool width.
const morselBatches = 8

// pipelineWindowPerWorker scales the reorder window: up to window = 2×width
// morsels may be claimed ahead of the emit cursor, bounding buffered output
// (and its Governor reservation) while keeping every worker busy.
const pipelineWindowPerWorker = 2

// stageBuilder rebuilds the operator chain on top of a morsel's scan range.
// It returns an error when some stage cannot run per-morsel (a grace-mode
// join); the pipeline then falls back to its serial chain.
type stageBuilder func(src BatchOperator) (BatchOperator, error)

// Pipeline implements BatchOperator.
type Pipeline struct {
	pool       *Pool
	width      int
	table      *data.Table
	batchSize  int
	morselRows int
	nmorsels   int
	build      stageBuilder
	serial     BatchOperator
	grant      *mem.Grant

	mu       sync.Mutex
	cond     *sync.Cond
	started  bool
	fallback bool
	next     int // next morsel seq to claim
	emit     int // next morsel seq to emit
	window   int // max claimed-ahead morsels
	helpers  int
	inflight map[int]bool
	ready    map[int]morselOut
	pval     any // first morsel panic, replayed on the consumer

	cur    morselOut
	curSet bool
	pos    int
	out    Batch
}

// morselOut is one morsel's fully-materialized output (selection vectors
// already applied).
type morselOut struct {
	cols  [][]int64
	bytes int64
}

// NewPipeline wraps the serial operator chain in a morsel-driven parallel
// pipeline over table t. build must reconstruct the chain's per-morsel
// stages on top of a morsel scan; serial is the unmodified chain, used
// verbatim when the pipeline cannot help (width 1, single morsel) or cannot
// clone a stage (grace-mode join). gov, when non-nil, accounts the reorder
// window's buffered morsels. A nil pool means the process Default.
func NewPipeline(pool *Pool, t *data.Table, width, batchSize int, build stageBuilder, serial BatchOperator, gov *mem.Governor) BatchOperator {
	width = ResolveParallelism(width)
	if batchSize <= 0 {
		batchSize = AdaptiveBatchSize(len(serial.Columns()))
	}
	morselRows := morselBatches * batchSize
	nmorsels := (t.NumRows() + morselRows - 1) / morselRows
	if width <= 1 || nmorsels <= 1 {
		return serial
	}
	if pool == nil {
		pool = Default()
	}
	pl := &Pipeline{
		pool:       pool,
		width:      width,
		table:      t,
		batchSize:  batchSize,
		morselRows: morselRows,
		nmorsels:   nmorsels,
		build:      build,
		serial:     serial,
		grant:      gov.Grant("pipeline-window"),
		window:     pipelineWindowPerWorker * width,
		inflight:   map[int]bool{},
		ready:      map[int]morselOut{},
	}
	pl.cond = sync.NewCond(&pl.mu)
	pl.out.Cols = make([][]int64, len(serial.Columns()))
	return pl
}

// Columns implements BatchOperator.
func (pl *Pipeline) Columns() []string { return pl.serial.Columns() }

// start runs once before the first emit: it constructs morsel 0's stage
// chain on the consumer goroutine — forcing every join build exactly once,
// single-threaded — and either latches the serial fallback (un-cloneable
// stage) or spawns the helper tasks.
func (pl *Pipeline) start() {
	pl.started = true
	hi := pl.morselRows
	if hi > pl.table.NumRows() {
		hi = pl.table.NumRows()
	}
	if _, err := pl.build(NewBatchScanRange(pl.table, 0, hi, pl.batchSize)); err != nil {
		pl.fallback = true
		return
	}
	pl.mu.Lock()
	spawn := pl.spawnCountLocked()
	pl.mu.Unlock()
	pl.submitHelpers(spawn)
}

// NextBatch implements BatchOperator: it serves the current morsel's output
// as zero-copy batchSize sub-slices, releasing each morsel's window
// reservation as it is fully emitted.
func (pl *Pipeline) NextBatch() (*Batch, bool) {
	if !pl.started {
		pl.start()
	}
	if pl.fallback {
		return pl.serial.NextBatch()
	}
	for {
		if pl.curSet {
			n := 0
			if len(pl.cur.cols) > 0 {
				n = len(pl.cur.cols[0])
			}
			if pl.pos < n {
				end := pl.pos + pl.batchSize
				if end > n {
					end = n
				}
				for c := range pl.cur.cols {
					pl.out.Cols[c] = pl.cur.cols[c][pl.pos:end]
				}
				pl.out.Sel = nil
				pl.pos = end
				return &pl.out, true
			}
			pl.grant.Release(pl.cur.bytes)
			pl.cur, pl.curSet = morselOut{}, false
		}
		if !pl.advance() {
			return nil, false
		}
	}
}

// advance moves the emit cursor to the next morsel's output, waiting on
// in-flight helpers or running the morsel inline when no helper has claimed
// it. Returns false once every morsel has been emitted.
func (pl *Pipeline) advance() bool {
	pl.mu.Lock()
	for {
		if pl.pval != nil {
			v := pl.pval
			pl.mu.Unlock()
			panic(v)
		}
		if pl.emit >= pl.nmorsels {
			pl.mu.Unlock()
			return false
		}
		if out, ok := pl.ready[pl.emit]; ok {
			delete(pl.ready, pl.emit)
			pl.emit++
			// The window slid forward: refill the helper complement.
			spawn := pl.spawnCountLocked()
			pl.mu.Unlock()
			pl.submitHelpers(spawn)
			pl.cur, pl.curSet, pl.pos = out, true, 0
			return true
		}
		if pl.inflight[pl.emit] {
			pl.cond.Wait()
			continue
		}
		// Morsels are claimed in ascending order and everything below emit has
		// been emitted, so an unclaimed emit is exactly pl.next: run it here.
		seq := pl.next
		pl.next++
		pl.inflight[seq] = true
		pl.mu.Unlock()
		pl.runMorsel(seq)
		pl.mu.Lock()
	}
}

// spawnCountLocked reserves helper slots for the claimable morsels inside
// the window and returns how many helper tasks the caller must submit (the
// submission happens outside the mutex: a closed private pool runs tasks
// inline, and an inline helper needs the mutex).
func (pl *Pipeline) spawnCountLocked() int {
	want := pl.width - 1 - pl.helpers
	if m := pl.nmorsels - pl.next; want > m {
		want = m
	}
	if m := pl.emit + pl.window - pl.next; want > m {
		want = m
	}
	if want < 0 {
		want = 0
	}
	pl.helpers += want
	return want
}

func (pl *Pipeline) submitHelpers(n int) {
	for i := 0; i < n; i++ {
		pl.pool.Submit(pl.helper)
	}
}

// helper is one pool task: claim and run morsels until the window is full,
// the morsels are exhausted, or a sibling panicked.
func (pl *Pipeline) helper() {
	for {
		pl.mu.Lock()
		if pl.pval != nil || pl.next >= pl.nmorsels || pl.next >= pl.emit+pl.window {
			pl.helpers--
			pl.cond.Broadcast()
			pl.mu.Unlock()
			return
		}
		seq := pl.next
		pl.next++
		pl.inflight[seq] = true
		pl.mu.Unlock()
		pl.runMorsel(seq)
	}
}

// runMorsel executes one morsel's stage chain and parks the output in the
// reorder window under its sequence number.
func (pl *Pipeline) runMorsel(seq int) {
	defer func() {
		if r := recover(); r != nil {
			pl.mu.Lock()
			if pl.pval == nil {
				pl.pval = r
			}
			delete(pl.inflight, seq)
			pl.cond.Broadcast()
			pl.mu.Unlock()
		}
	}()
	out := pl.execMorsel(seq)
	pl.grant.Force(out.bytes)
	pl.mu.Lock()
	pl.ready[seq] = out
	delete(pl.inflight, seq)
	pl.cond.Broadcast()
	pl.mu.Unlock()
}

// execMorsel rebuilds the stage chain over morsel seq's scan range and
// drains it, compacting selection vectors into private column slabs.
func (pl *Pipeline) execMorsel(seq int) morselOut {
	lo := seq * pl.morselRows
	hi := lo + pl.morselRows
	if n := pl.table.NumRows(); hi > n {
		hi = n
	}
	op, err := pl.build(NewBatchScanRange(pl.table, lo, hi, pl.batchSize))
	if err != nil {
		// start() already proved the chain clones; a later failure is a bug.
		panic(fmt.Errorf("exec: pipeline stage rebuild for morsel %d: %w", seq, err))
	}
	cols := make([][]int64, len(pl.out.Cols))
	for {
		b, ok := op.NextBatch()
		if !ok {
			break
		}
		for c, src := range b.Cols {
			if b.Sel != nil {
				for _, r := range b.Sel {
					cols[c] = append(cols[c], src[r])
				}
			} else {
				cols[c] = append(cols[c], src...)
			}
		}
	}
	var bytes int64
	for _, c := range cols {
		bytes += int64(len(c)) * 8
	}
	return morselOut{cols: cols, bytes: bytes}
}

// Reset implements BatchOperator: it quiesces the helpers, drops buffered
// morsels (releasing their reservations), and rewinds the cursors. The
// joins' built hash tables are retained inside the recorded stages, so a
// replay probes the same tables — exactly the serial chain's Reset contract.
func (pl *Pipeline) Reset() {
	if !pl.started {
		return
	}
	if pl.fallback {
		pl.serial.Reset()
		return
	}
	pl.mu.Lock()
	// Park the claim cursor at the end so helpers drain and exit instead of
	// claiming fresh morsels, then wait the in-flight ones out.
	pl.next = pl.nmorsels
	for pl.helpers > 0 || len(pl.inflight) > 0 {
		pl.cond.Wait()
	}
	//statcheck:ignore maprange releasing reservations is commutative; the map is emptied either way
	for seq, out := range pl.ready {
		pl.grant.Release(out.bytes)
		delete(pl.ready, seq)
	}
	if pl.curSet {
		pl.grant.Release(pl.cur.bytes)
		pl.cur, pl.curSet = morselOut{}, false
	}
	pl.next, pl.emit, pl.pos = 0, 0, 0
	pl.pval = nil
	pl.started = false
	pl.mu.Unlock()
}
