package exec

import (
	"fmt"
	"io"

	"github.com/sitstats/sits/internal/mem"
)

// Grace hash join: the spill path of VecHashJoin.
//
// When the build side's arena exceeds the operator's memory grant, the join
// switches to grace mode: build rows are hash-partitioned to per-partition
// spill runs (the partition is a pure function of the join-key hash, so all
// rows with equal keys land in the same partition, and rows are written in
// global build order, so each partition's run preserves build-input order).
// The probe side is then partitioned the same way, with every probe row
// tagged with a global sequence number. Each partition is joined
// independently — its build run is loaded into a fresh joinTable under the
// grant and its probe run streamed against it — emitting [seq, left-row,
// right-row] rows to per-partition output runs. A partition whose build run
// still exceeds the grant is hash-partitioned once more with a fresh salt;
// at that second level the residual is force-admitted (equal keys co-hash at
// every level, so further splitting cannot help a single oversized key
// group).
//
// Order restoration: the in-memory join emits matches per probe row (probe
// order) in build-input order within each probe row. Per-partition joins
// preserve exactly that order locally — probe runs are seq-ascending, chains
// are build-ordered — and the sequence number is globally unique per probe
// row, so a loser-tree merge of the output runs by seq reproduces the
// in-memory output stream byte for byte, at any budget and any parallelism.
const gracePartitions = 8

// Partition salts. Level 0 and level 1 must disagree so re-partitioning an
// oversized partition actually redistributes its keys.
const (
	graceSalt0 uint64 = 0x9ddfea08eb382d69
	graceSalt1 uint64 = 0xa24baed4963ee407
)

// gracePartOf maps a join-key hash to its grace partition. The extra mix64
// decorrelates the partition from both the joinTable's internal partitioning
// (high hash bits) and its slot indexing (low bits).
//
//statcheck:hot
func gracePartOf(h, salt uint64) int {
	return int((mix64(h^salt) >> 32) * gracePartitions >> 32)
}

// spillRun buffers fixed-stride rows and flushes them to a flat single-column
// run in whole-row chunks of up to spillBatchRows rows.
type spillRun struct {
	w     *mem.RunWriter
	buf   []int64
	limit int       // flush threshold in values (spillBatchRows * stride)
	chunk [][]int64 // 1-element header reused for WriteColumns
}

func newSpillRun(store *mem.RunStore, tag string, stride int) *spillRun {
	w, err := store.Create(tag, 1)
	if err != nil {
		spillFail("create "+tag+" run", err)
	}
	limit := spillBatchRows * stride
	return &spillRun{w: w, buf: make([]int64, 0, limit), limit: limit, chunk: make([][]int64, 1)}
}

// append adds one row. Rows are exactly stride values, and limit is a
// multiple of stride, so flushed chunks stay whole-row aligned.
func (s *spillRun) append(row []int64) {
	s.buf = append(s.buf, row...)
	if len(s.buf) >= s.limit {
		s.flush()
	}
}

func (s *spillRun) flush() {
	if len(s.buf) == 0 {
		return
	}
	s.chunk[0] = s.buf
	if err := s.w.WriteColumns(s.chunk); err != nil {
		spillFail("write run", err)
	}
	s.buf = s.buf[:0]
}

func (s *spillRun) finish() *mem.Run {
	s.flush()
	r, err := s.w.Finish()
	if err != nil {
		spillFail("finish run", err)
	}
	return r
}

// graceJoin holds VecHashJoin's spill state once the build side has
// overflowed its grant.
type graceJoin struct {
	j     *VecHashJoin
	store *mem.RunStore

	buildW  []*spillRun // level-0 build partition writers (nil after probe starts)
	probeW  []*spillRun
	outRuns []*mem.Run

	buildStride int // left row width
	probeStride int // 1 (seq) + right row width
	outStride   int // 1 (seq) + left row width + right row width

	rowScratch []int64 // buildStride transpose scratch
	probeRow   []int64 // probeStride scratch
	outRow     []int64 // outStride scratch

	seq     int64 // next probe sequence number
	subID   int   // uniquifier for sub-partition run names
	merging bool
	cursors []*rowCursor
	lt      *loserTree
}

// startGrace flips the join into grace mode: the arena accumulated so far is
// flushed to per-partition build runs (in arena order, preserving build-input
// order within each partition) and its reservation returned to the budget.
func (j *VecHashJoin) startGrace() {
	store, err := j.gov.Runs()
	if err != nil {
		spillFail("open run store", err)
	}
	nl := len(j.left.Columns())
	nr := len(j.right.Columns())
	g := &graceJoin{
		j:           j,
		store:       store,
		buildStride: nl,
		probeStride: 1 + nr,
		outStride:   1 + nl + nr,
		rowScratch:  make([]int64, nl),
		probeRow:    make([]int64, 1+nr),
		buildW:      make([]*spillRun, gracePartitions),
	}
	g.outRow = make([]int64, g.outStride)
	for p := range g.buildW {
		g.buildW[p] = newSpillRun(store, fmt.Sprintf("join-build-p%d", p), nl)
	}
	jt := j.jt
	for i := 0; i < jt.rows; i++ {
		row := jt.arena[i*nl : (i+1)*nl]
		_, h := jt.rowKeyHash(row)
		g.buildW[gracePartOf(h, graceSalt0)].append(row)
	}
	j.grant.Release(j.buildBytes)
	j.buildBytes = 0
	jt.arena = nil
	jt.rows = 0
	j.grace = g
}

// addBuildBatch routes one build batch's active rows to their partitions.
func (g *graceJoin) addBuildBatch(b *Batch) {
	jt := g.j.jt
	n := b.NumRows()
	for i := 0; i < n; i++ {
		r := i
		if b.Sel != nil {
			r = int(b.Sel[i])
		}
		for ci, col := range b.Cols {
			g.rowScratch[ci] = col[r]
		}
		_, h := jt.rowKeyHash(g.rowScratch)
		g.buildW[gracePartOf(h, graceSalt0)].append(g.rowScratch)
	}
}

// run executes the grace join to completion: partition the probe side, join
// every partition, and open the order-restoring merge over the output runs.
func (g *graceJoin) run() {
	j := g.j
	buildRuns := make([]*mem.Run, gracePartitions)
	for p := range g.buildW {
		buildRuns[p] = g.buildW[p].finish()
		g.buildW[p] = nil
	}
	g.probeW = make([]*spillRun, gracePartitions)
	for p := range g.probeW {
		g.probeW[p] = newSpillRun(g.store, fmt.Sprintf("join-probe-p%d", p), g.probeStride)
	}
	jt := j.jt
	for {
		rb, ok := j.right.NextBatch()
		if !ok {
			break
		}
		n := rb.NumRows()
		for i := 0; i < n; i++ {
			r := i
			if rb.Sel != nil {
				r = int(rb.Sel[i])
			}
			for ci, c := range j.rIdx {
				j.probeVals[ci] = rb.Cols[c][r]
			}
			_, h := jt.probeKeyHash(j.probeVals)
			g.probeRow[0] = g.seq
			g.seq++
			for ci, col := range rb.Cols {
				g.probeRow[1+ci] = col[r]
			}
			g.probeW[gracePartOf(h, graceSalt0)].append(g.probeRow)
		}
	}
	probeRuns := make([]*mem.Run, gracePartitions)
	for p := range g.probeW {
		probeRuns[p] = g.probeW[p].finish()
		g.probeW[p] = nil
	}
	for p := 0; p < gracePartitions; p++ {
		g.joinPartition(buildRuns[p], probeRuns[p], 0)
	}
	g.openMerge()
}

// joinPartition joins one (build run, probe run) pair. level 0 partitions
// come straight from the inputs; level 1 are the sub-partitions of an
// oversized level-0 partition and force-admit whatever doesn't fit.
func (g *graceJoin) joinPartition(build, probe *mem.Run, level int) {
	j := g.j
	if build.Rows() == 0 || probe.Rows() == 0 {
		g.removeRuns(build, probe)
		return
	}
	jt := newJoinTable(g.buildStride, j.lIdx)
	reserved, ok := g.loadBuild(jt, build, level)
	if !ok {
		g.subPartition(build, probe)
		return
	}
	jt.build(j.parallelism)
	out := newSpillRun(g.store, fmt.Sprintf("join-out-l%d", level), g.outStride)
	cur := openRowCursor(probe, g.probeStride)
	g.probePartition(jt, cur, out)
	g.outRuns = append(g.outRuns, out.finish())
	j.grant.Release(reserved)
	g.removeRuns(build, probe)
}

// loadBuild streams a build partition run into a fresh joinTable arena,
// reserving each chunk against the grant. At level 0 a denial abandons the
// load (the caller sub-partitions instead); at level 1 the residual is
// force-admitted, since equal keys co-hash at every level and splitting
// further cannot shrink a single oversized key group.
func (g *graceJoin) loadBuild(jt *joinTable, build *mem.Run, level int) (int64, bool) {
	j := g.j
	rd, err := build.Open()
	if err != nil {
		spillFail("open build partition", err)
	}
	var reserved int64
	for {
		cols, rerr := rd.Next()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			spillFail("read build partition", rerr)
		}
		chunk := cols[0]
		need := int64(len(chunk)) * 8
		if !j.grant.TryReserve(need) {
			if level == 0 {
				j.grant.Release(reserved)
				if cerr := rd.Close(); cerr != nil {
					spillFail("close build partition", cerr)
				}
				return 0, false
			}
			j.grant.Force(need)
		}
		reserved += need
		copy(jt.grow(len(chunk)), chunk)
		jt.rows += len(chunk) / jt.stride
	}
	if cerr := rd.Close(); cerr != nil {
		spillFail("close build partition", cerr)
	}
	return reserved, true
}

// probePartition streams one probe partition against its built table,
// emitting [seq, left-row, right-row] rows in (seq, build-order) order.
//
//statcheck:hot
func (g *graceJoin) probePartition(jt *joinTable, cur *rowCursor, out *spillRun) {
	j := g.j
	for !cur.done {
		row := cur.row()
		for ci := range j.rIdx {
			j.probeVals[ci] = row[1+j.rIdx[ci]]
		}
		key, h := jt.probeKeyHash(j.probeVals)
		for r := jt.probeHead(key, h); r != 0; r = jt.chainNext(r) {
			if !jt.single && !jt.matches(r, j.probeVals) {
				continue
			}
			g.outRow[0] = row[0]
			copy(g.outRow[1:1+g.buildStride], jt.buildRow(r))
			copy(g.outRow[1+g.buildStride:], row[1:])
			out.append(g.outRow)
		}
		cur.advance()
	}
}

// subPartition re-partitions an oversized level-0 partition with the level-1
// salt and joins each sub-partition. Row order within each sub-run is the
// parent run's order, i.e. still global build/seq order.
func (g *graceJoin) subPartition(build, probe *mem.Run) {
	j := g.j
	g.subID++
	id := g.subID
	subBuild := make([]*spillRun, gracePartitions)
	subProbe := make([]*spillRun, gracePartitions)
	for p := range subBuild {
		subBuild[p] = newSpillRun(g.store, fmt.Sprintf("join-build-s%d-p%d", id, p), g.buildStride)
		subProbe[p] = newSpillRun(g.store, fmt.Sprintf("join-probe-s%d-p%d", id, p), g.probeStride)
	}
	cur := openRowCursor(build, g.buildStride)
	for !cur.done {
		row := cur.row()
		_, h := j.jt.rowKeyHash(row)
		subBuild[gracePartOf(h, graceSalt1)].append(row)
		cur.advance()
	}
	pcur := openRowCursor(probe, g.probeStride)
	for !pcur.done {
		row := pcur.row()
		for ci := range j.rIdx {
			j.probeVals[ci] = row[1+j.rIdx[ci]]
		}
		_, h := j.jt.probeKeyHash(j.probeVals)
		subProbe[gracePartOf(h, graceSalt1)].append(row)
		pcur.advance()
	}
	g.removeRuns(build, probe)
	for p := 0; p < gracePartitions; p++ {
		g.joinPartition(subBuild[p].finish(), subProbe[p].finish(), 1)
	}
}

// removeRuns deletes partition runs the join is done with, reclaiming spill
// disk before the next partition loads.
func (g *graceJoin) removeRuns(runs ...*mem.Run) {
	for _, r := range runs {
		if err := r.Remove(); err != nil {
			spillFail("remove partition run", err)
		}
	}
}

// openMerge opens a cursor per output run and builds the loser tree ordered
// by probe sequence number.
func (g *graceJoin) openMerge() {
	g.cursors = g.cursors[:0]
	for _, r := range g.outRuns {
		g.cursors = append(g.cursors, openRowCursor(r, g.outStride))
	}
	g.lt = newLoserTree(len(g.cursors), g.less)
	g.merging = true
}

// less orders merge cursors by probe sequence number; exhausted and padding
// cursors sort last. Each seq lives in exactly one output run (a probe row
// joins in exactly one partition), so ties only pair dead cursors.
func (g *graceJoin) less(a, b int) bool {
	if a >= len(g.cursors) || g.cursors[a].done {
		return false
	}
	if b >= len(g.cursors) || g.cursors[b].done {
		return true
	}
	return g.cursors[a].key() < g.cursors[b].key()
}

// nextBatch is the grace-mode NextBatch: the first call runs the join to
// completion, then batches stream from the seq-ordered merge of the output
// runs, dropping the seq column.
//
//statcheck:hot
func (g *graceJoin) nextBatch() (*Batch, bool) {
	if !g.merging {
		g.run()
	}
	j := g.j
	nc := len(j.cols)
	for i := range j.bufs {
		j.bufs[i] = j.bufs[i][:0]
	}
	emitted := 0
	for emitted < j.size && len(g.cursors) > 0 {
		w := g.lt.winner()
		if w >= len(g.cursors) {
			break
		}
		cur := g.cursors[w]
		if cur.done {
			break
		}
		row := cur.row()
		for c := 0; c < nc; c++ {
			j.bufs[c] = append(j.bufs[c], row[1+c])
		}
		cur.advance()
		g.lt.fix()
		emitted++
	}
	if emitted == 0 {
		return nil, false
	}
	return j.flush(), true
}

// reset rewinds the grace join for another consumption pass: output runs are
// retained, so a reset only reopens their cursors and replays the merge.
func (g *graceJoin) reset() {
	if !g.merging {
		// The probe phase never started, so the right input is untouched by
		// grace mode; rewind it like the in-memory path would.
		g.j.right.Reset()
		return
	}
	for _, c := range g.cursors {
		if !c.done {
			if err := c.rd.Close(); err != nil {
				spillFail("close output run", err)
			}
		}
	}
	g.openMerge()
}
