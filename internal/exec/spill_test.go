package exec

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/mem"
)

// The spill-equivalence property: every memory-governed operator produces a
// byte-identical output stream at any budget — unlimited, a fraction of the
// working set, or a pathological 1-byte budget that spills everything — and
// at any parallelism level. The tests here drive each operator through all
// three regimes against its in-memory reference.

// spillJoinTables builds a build/probe table pair with heavy key duplication
// and negative keys (keys in [-50, 50] over thousands of rows).
func spillJoinTables(t *testing.T, nl, nr int) (*data.Table, *data.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	l := data.MustNewTable("L", "k", "k2", "v")
	for i := 0; i < nl; i++ {
		if err := l.AppendRow(rng.Int63n(101)-50, rng.Int63n(5), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	r := data.MustNewTable("R", "k", "k2", "u")
	for i := 0; i < nr; i++ {
		if err := r.AppendRow(rng.Int63n(101)-50, rng.Int63n(5), int64(-i)); err != nil {
			t.Fatal(err)
		}
	}
	return l, r
}

// tableBytes is the operator-accounted size of a table's rows.
func tableBytes(tab *data.Table) int64 {
	return int64(tab.NumRows()) * int64(tab.NumCols()) * 8
}

// spillBudgets returns the three budget regimes for a working set: unlimited,
// half the working set (partial spill), and 1 byte (everything spills).
func spillBudgets(workingSet int64) []int64 {
	return []int64{0, workingSet / 2, 1}
}

func TestGraceJoinEquivalence(t *testing.T) {
	l, r := spillJoinTables(t, 3000, 4000)
	cond := JoinCond{LeftCol: "L.k", RightCol: "R.k"}
	refJ, err := NewVecHashJoin(NewBatchScan(l), NewBatchScan(r), 1, cond)
	if err != nil {
		t.Fatal(err)
	}
	ref := drainBatches(t, refJ)
	if len(ref) == 0 {
		t.Fatal("reference join is empty; the test data is broken")
	}
	for _, budget := range spillBudgets(tableBytes(l)) {
		for _, par := range []int{1, 4} {
			gov := mem.NewGovernor(budget)
			j, err := NewVecHashJoinMem(NewBatchScan(l), NewBatchScan(r), par, 0, gov, cond)
			if err != nil {
				t.Fatal(err)
			}
			got := drainBatches(t, j)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("budget=%d par=%d: join diverges from in-memory reference (%d vs %d rows)",
					budget, par, len(got), len(ref))
			}
			if budget > 0 && j.grace == nil {
				t.Fatalf("budget=%d: join never spilled; the budget regime is not exercised", budget)
			}
			if budget == 0 && j.grace != nil {
				t.Fatal("unlimited budget must not spill")
			}
			// Reset must replay the identical stream (in grace mode this
			// re-merges the retained output runs).
			j.Reset()
			again := drainBatches(t, j)
			if !reflect.DeepEqual(again, ref) {
				t.Fatalf("budget=%d par=%d: Reset replay diverges", budget, par)
			}
			if err := gov.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestGraceJoinMultiCondEquivalence(t *testing.T) {
	l, r := spillJoinTables(t, 2000, 2500)
	conds := []JoinCond{
		{LeftCol: "L.k", RightCol: "R.k"},
		{LeftCol: "L.k2", RightCol: "R.k2"},
	}
	refJ, err := NewVecHashJoin(NewBatchScan(l), NewBatchScan(r), 1, conds...)
	if err != nil {
		t.Fatal(err)
	}
	ref := drainBatches(t, refJ)
	if len(ref) == 0 {
		t.Fatal("reference multi-cond join is empty")
	}
	for _, budget := range spillBudgets(tableBytes(l)) {
		for _, par := range []int{1, 4} {
			gov := mem.NewGovernor(budget)
			j, err := NewVecHashJoinMem(NewBatchScan(l), NewBatchScan(r), par, 0, gov, conds...)
			if err != nil {
				t.Fatal(err)
			}
			if got := drainBatches(t, j); !reflect.DeepEqual(got, ref) {
				t.Fatalf("budget=%d par=%d: multi-cond join diverges (%d vs %d rows)",
					budget, par, len(got), len(ref))
			}
			if err := gov.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestGraceJoinEmptyInputs(t *testing.T) {
	l, r := spillJoinTables(t, 1500, 1500)
	empty := data.MustNewTable("E", "k", "k2", "v")
	cond := JoinCond{LeftCol: "E.k", RightCol: "R.k"}
	for _, budget := range []int64{0, 1} {
		gov := mem.NewGovernor(budget)
		// Empty build side.
		j, err := NewVecHashJoinMem(NewBatchScan(empty), NewBatchScan(r), 1, 0, gov, cond)
		if err != nil {
			t.Fatal(err)
		}
		if got := drainBatches(t, j); len(got) != 0 {
			t.Fatalf("budget=%d: empty build side produced %d rows", budget, len(got))
		}
		// Empty probe side.
		j2, err := NewVecHashJoinMem(NewBatchScan(l), NewBatchScan(empty), 1, 0, gov,
			JoinCond{LeftCol: "L.k", RightCol: "E.k"})
		if err != nil {
			t.Fatal(err)
		}
		if got := drainBatches(t, j2); len(got) != 0 {
			t.Fatalf("budget=%d: empty probe side produced %d rows", budget, len(got))
		}
		if err := gov.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHashJoinMemEquivalence(t *testing.T) {
	l, r := spillJoinTables(t, 2000, 3000)
	cond := JoinCond{LeftCol: "L.k", RightCol: "R.k"}
	refJ, err := NewHashJoin(NewTableScan(l), NewTableScan(r), cond)
	if err != nil {
		t.Fatal(err)
	}
	ref := drain(t, refJ)
	for _, budget := range spillBudgets(tableBytes(l)) {
		gov := mem.NewGovernor(budget)
		j, err := NewHashJoinMem(NewTableScan(l), NewTableScan(r), gov, cond)
		if err != nil {
			t.Fatal(err)
		}
		if got := drain(t, j); !reflect.DeepEqual(got, ref) {
			t.Fatalf("budget=%d: row hash join diverges from HashJoin (%d vs %d rows)",
				budget, len(got), len(ref))
		}
		if err := gov.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExternalSortEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := data.MustNewTable("S", "k", "a", "b")
	for i := 0; i < 5000; i++ {
		// Duplicate-heavy keys including negatives; payload records input
		// order so stability violations are visible.
		if err := tab.AppendRow(rng.Int63n(61)-30, int64(i), rng.Int63()); err != nil {
			t.Fatal(err)
		}
	}
	refS, err := NewBatchSort(NewBatchScan(tab), "S.k")
	if err != nil {
		t.Fatal(err)
	}
	ref := drainBatches(t, refS)
	for _, budget := range spillBudgets(tableBytes(tab)) {
		gov := mem.NewGovernor(budget)
		s, err := NewBatchSortMem(NewBatchScan(tab), "S.k", 0, gov, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := drainBatches(t, s)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("budget=%d: external sort diverges from in-memory stable sort", budget)
		}
		if budget > 0 && len(s.runs) == 0 {
			t.Fatalf("budget=%d: sort never spilled; the budget regime is not exercised", budget)
		}
		s.Reset()
		if again := drainBatches(t, s); !reflect.DeepEqual(again, ref) {
			t.Fatalf("budget=%d: Reset replay diverges", budget)
		}
		if err := gov.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMergeJoinUnderBudgetEquivalence(t *testing.T) {
	l, r := spillJoinTables(t, 1500, 2000)
	mkRef := func() Operator {
		ls, err := NewSort(NewTableScan(l), "L.k")
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewSort(NewTableScan(r), "R.k")
		if err != nil {
			t.Fatal(err)
		}
		mj, err := NewMergeJoin(ls, rs, "L.k", "R.k")
		if err != nil {
			t.Fatal(err)
		}
		return mj
	}
	ref := drain(t, mkRef())
	if len(ref) == 0 {
		t.Fatal("reference merge join is empty")
	}
	// The budget governs the merge join's input sorts: with external sorts
	// underneath, the sorted streams — and hence the join — are identical.
	for _, budget := range spillBudgets(tableBytes(l) + tableBytes(r)) {
		gov := mem.NewGovernor(budget)
		ls, err := NewSortMem(NewTableScan(l), "L.k", gov, nil)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewSortMem(NewTableScan(r), "R.k", gov, nil)
		if err != nil {
			t.Fatal(err)
		}
		mj, err := NewMergeJoin(ls, rs, "L.k", "R.k")
		if err != nil {
			t.Fatal(err)
		}
		if got := drain(t, mj); !reflect.DeepEqual(got, ref) {
			t.Fatalf("budget=%d: merge join over external sorts diverges (%d vs %d rows)",
				budget, len(got), len(ref))
		}
		if err := gov.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGovernorPeakWithinBudget drives a join and a sort whose working sets
// are 4x the budget and asserts the Governor's accounted peak never exceeds
// the budget: the operators shed state instead of overcommitting. Batches
// are kept small enough that no single reservation exceeds the whole budget
// (which would trigger the documented Force escape hatch).
func TestGovernorPeakWithinBudget(t *testing.T) {
	l, r := spillJoinTables(t, 4096, 4096)
	ws := tableBytes(l)
	budget := ws / 4
	gov := mem.NewGovernor(budget)
	j, err := NewVecHashJoinMem(NewBatchScanSize(l, 64), NewBatchScanSize(r, 64), 2, 64, gov,
		JoinCond{LeftCol: "L.k", RightCol: "R.k"})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		b, ok := j.NextBatch()
		if !ok {
			break
		}
		n += b.NumRows()
	}
	if n == 0 {
		t.Fatal("join produced nothing")
	}
	if peak := gov.Peak(); peak > budget {
		t.Fatalf("join: accounted peak %d exceeds budget %d", peak, budget)
	}
	if err := gov.Close(); err != nil {
		t.Fatal(err)
	}

	gov2 := mem.NewGovernor(budget)
	s, err := NewBatchSortMem(NewBatchScanSize(l, 64), "L.k", 64, gov2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainBatches(t, s); len(got) != l.NumRows() {
		t.Fatalf("sort returned %d rows, want %d", len(got), l.NumRows())
	}
	if peak := gov2.Peak(); peak > budget {
		t.Fatalf("sort: accounted peak %d exceeds budget %d", peak, budget)
	}
	if err := gov2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSortedRunCacheHitAndMutationInvalidation(t *testing.T) {
	tab := data.MustNewTable("C", "k", "v")
	for i := int64(0); i < 2000; i++ {
		if err := tab.AppendRow((i*7919)%100-50, i); err != nil {
			t.Fatal(err)
		}
	}
	cache := NewSortCache()
	sortOnce := func() [][]int64 {
		s, err := NewBatchSortMem(NewBatchScan(tab), "C.k", 0, nil, cache)
		if err != nil {
			t.Fatal(err)
		}
		return drainBatches(t, s)
	}
	first := sortOnce()
	if hits, misses := cache.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("after cold sort: hits=%d misses=%d, want 0/1", hits, misses)
	}
	second := sortOnce()
	if !reflect.DeepEqual(second, first) {
		t.Fatal("cache hit serves a different stream than the cold sort")
	}
	if hits, _ := cache.Stats(); hits != 1 {
		t.Fatalf("identical re-sort must hit the cache, hits=%d", hits)
	}

	// Mutate the table between two identical plans: the generation bump must
	// evict the stale entry and the new sort must see the new row.
	if err := tab.AppendRow(-1000, 9999); err != nil {
		t.Fatal(err)
	}
	third := sortOnce()
	if len(third) != len(first)+1 {
		t.Fatalf("post-mutation sort has %d rows, want %d", len(third), len(first)+1)
	}
	if third[0][0] != -1000 || third[0][1] != 9999 {
		t.Fatalf("post-mutation sort misses the appended row: first row %v", third[0])
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 2 {
		t.Fatalf("stale entry must count as a miss: hits=%d misses=%d", hits, misses)
	}
	if cache.Len() != 1 {
		t.Fatalf("stale entry must be evicted, len=%d", cache.Len())
	}
	// And the fresh entry serves the post-mutation stream.
	fourth := sortOnce()
	if !reflect.DeepEqual(fourth, third) {
		t.Fatal("fresh cache entry diverges from post-mutation sort")
	}
}

// TestSpilledSortDoesNotPopulateCache: a sort that exceeded its budget by
// definition does not fit in RAM; caching its merged result would hold the
// working set behind the Governor's back.
func TestSpilledSortDoesNotPopulateCache(t *testing.T) {
	tab := data.MustNewTable("D", "k", "v")
	for i := int64(0); i < 3000; i++ {
		if err := tab.AppendRow((3000-i)%97, i); err != nil {
			t.Fatal(err)
		}
	}
	cache := NewSortCache()
	gov := mem.NewGovernor(1)
	s, err := NewBatchSortMem(NewBatchScan(tab), "D.k", 0, gov, cache)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainBatches(t, s); len(got) != tab.NumRows() {
		t.Fatalf("spilled sort returned %d rows, want %d", len(got), tab.NumRows())
	}
	if cache.Len() != 0 {
		t.Fatalf("spilled sort must not populate the cache, len=%d", cache.Len())
	}
	if err := gov.Close(); err != nil {
		t.Fatal(err)
	}
}
