package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/query"
)

// benchJoinInputs builds a build side of nl rows and a probe side of nr rows
// with join keys uniform in [0, domain), so the expected join output is
// nl*nr/domain rows. The default benchmark sizing (100k x 100k over a 10k
// domain) yields a ~1M-row output.
func benchJoinInputs(nl, nr, domain int) (*data.Table, *data.Table) {
	rng := rand.New(rand.NewSource(1))
	r := data.MustNewTable("R", "x", "p")
	r.Grow(nl)
	for i := 0; i < nl; i++ {
		r.AppendRow(rng.Int63n(int64(domain)), int64(i))
	}
	s := data.MustNewTable("S", "y", "q")
	s.Grow(nr)
	for i := 0; i < nr; i++ {
		s.AppendRow(rng.Int63n(int64(domain)), int64(i))
	}
	return r, s
}

// seedHashJoin is the string-keyed map join this PR replaced, preserved
// verbatim as the benchmark baseline.
type seedHashJoin struct {
	left, right Operator
	lIdx, rIdx  []int
	ncols       int

	built   bool
	ht      map[string][][]int64
	pending [][]int64
	current []int64
	row     []int64
}

func newSeedHashJoin(left, right Operator, conds ...JoinCond) (*seedHashJoin, error) {
	j := &seedHashJoin{left: left, right: right}
	for _, c := range conds {
		li, err := columnIndex(left.Columns(), c.LeftCol)
		if err != nil {
			return nil, err
		}
		ri, err := columnIndex(right.Columns(), c.RightCol)
		if err != nil {
			return nil, err
		}
		j.lIdx = append(j.lIdx, li)
		j.rIdx = append(j.rIdx, ri)
	}
	j.ncols = len(left.Columns()) + len(right.Columns())
	j.row = make([]int64, j.ncols)
	return j, nil
}

func seedJoinKey(row []int64, idx []int) string {
	buf := make([]byte, 0, len(idx)*8)
	for _, i := range idx {
		v := uint64(row[i])
		buf = append(buf,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return string(buf)
}

func (j *seedHashJoin) Next() ([]int64, bool) {
	if !j.built {
		j.ht = make(map[string][][]int64)
		for {
			row, ok := j.left.Next()
			if !ok {
				break
			}
			cp := make([]int64, len(row))
			copy(cp, row)
			j.ht[seedJoinKey(cp, j.lIdx)] = append(j.ht[seedJoinKey(cp, j.lIdx)], cp)
		}
		j.built = true
	}
	for {
		if len(j.pending) > 0 {
			l := j.pending[0]
			j.pending = j.pending[1:]
			copy(j.row, l)
			copy(j.row[len(l):], j.current)
			return j.row, true
		}
		r, ok := j.right.Next()
		if !ok {
			return nil, false
		}
		matches := j.ht[seedJoinKey(r, j.rIdx)]
		if len(matches) == 0 {
			continue
		}
		if j.current == nil {
			j.current = make([]int64, len(r))
		}
		copy(j.current, r)
		j.pending = matches
	}
}

// BenchmarkHashJoin measures a single equi-join producing ~1M output rows:
// the seed string-keyed map join, the rewritten row HashJoin, and the
// vectorized join at parallelism 1 and GOMAXPROCS. The acceptance bar for
// this PR is new/seed >= 2x at parallelism 1.
func BenchmarkHashJoin(b *testing.B) {
	r, s := benchJoinInputs(100_000, 100_000, 10_000)
	cond := JoinCond{LeftCol: "R.x", RightCol: "S.y"}

	b.Run("seed-stringmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j, err := newSeedHashJoin(NewTableScan(r), NewTableScan(s), cond)
			if err != nil {
				b.Fatal(err)
			}
			var rows int64
			for {
				if _, ok := j.Next(); !ok {
					break
				}
				rows++
			}
			b.ReportMetric(float64(rows), "outrows")
		}
	})
	b.Run("row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j, err := NewHashJoin(NewTableScan(r), NewTableScan(s), cond)
			if err != nil {
				b.Fatal(err)
			}
			var rows int64
			for {
				if _, ok := j.Next(); !ok {
					break
				}
				rows++
			}
			b.ReportMetric(float64(rows), "outrows")
		}
	})
	for _, p := range []int{1, 0} {
		name := "vec-parallel1"
		if p == 0 {
			name = "vec-parallelmax"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j, err := NewVecHashJoin(NewBatchScan(r), NewBatchScan(s), p, cond)
				if err != nil {
					b.Fatal(err)
				}
				var rows int64
				for {
					batch, ok := j.NextBatch()
					if !ok {
						break
					}
					rows += int64(batch.NumRows())
				}
				b.ReportMetric(float64(rows), "outrows")
			}
		})
	}
}

// chainCatalog is a 3-table chain (T1 ⋈ T2 ⋈ T3) of the given size for
// end-to-end plan benchmarks and the determinism matrix tests.
func chainCatalog(rows int, domain int64) (*data.Catalog, *query.Expr) {
	rng := rand.New(rand.NewSource(2))
	cat := data.NewCatalog()
	t1 := data.MustNewTable("T1", "jnext")
	t1.Grow(rows)
	for i := 0; i < rows; i++ {
		t1.AppendRow(rng.Int63n(domain))
	}
	t2 := data.MustNewTable("T2", "jprev", "jnext")
	t2.Grow(rows)
	for i := 0; i < rows; i++ {
		t2.AppendRow(rng.Int63n(domain), rng.Int63n(domain))
	}
	t3 := data.MustNewTable("T3", "jprev", "a")
	t3.Grow(rows)
	for i := 0; i < rows; i++ {
		t3.AppendRow(rng.Int63n(domain), rng.Int63n(500))
	}
	cat.MustAdd(t1)
	cat.MustAdd(t2)
	cat.MustAdd(t3)
	e, err := query.Chain([]string{"T1", "T2", "T3"}, []string{"jnext", "jnext"}, []string{"jprev", "jprev"})
	if err != nil {
		panic(err)
	}
	return cat, e
}

func benchPlanCatalog() (*data.Catalog, *query.Expr) {
	return chainCatalog(20_000, 2_000)
}

// BenchmarkMaterialize measures the full batch pipeline — plan, join, and
// bulk-append into a data.Table — for a 3-way chain join.
func BenchmarkMaterialize(b *testing.B) {
	cat, e := benchPlanCatalog()
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op, err := PlanBatch(cat, e, Options{Parallelism: 1})
			if err != nil {
				b.Fatal(err)
			}
			tab, err := MaterializeBatch(op, "out")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(tab.NumRows()), "outrows")
		}
	})
	b.Run("rowloop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op, err := PlanBatch(cat, e, Options{Parallelism: 1})
			if err != nil {
				b.Fatal(err)
			}
			rows := NewRows(op)
			names := make([]string, len(rows.Columns()))
			for c := range names {
				names[c] = fmt.Sprintf("c%d", c)
			}
			tab := data.MustNewTable("out", names...)
			for {
				row, ok := rows.Next()
				if !ok {
					break
				}
				if err := tab.AppendRow(row...); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tab.NumRows()), "outrows")
		}
	})
}

// BenchmarkPipeline measures the morsel-driven pipeline end to end — plan,
// parallel scan → filter-free probe chain, ordered merge, drain — for the
// 3-way chain join at pool widths 1 (serial chain, no Pipeline wrapper) and 4
// (morsel fan-out on the shared pool). CI compares the two widths: width 4
// must beat width 1 by ≥1.5x on a multi-core host, and width 1 must stay
// within 5% of the serial baseline because PlanBatch skips the Pipeline
// entirely at width 1.
func BenchmarkPipeline(b *testing.B) {
	cat, e := benchPlanCatalog()
	for _, width := range []int{1, 4} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				op, err := PlanBatch(cat, e, Options{Parallelism: width})
				if err != nil {
					b.Fatal(err)
				}
				var rows int64
				for {
					batch, ok := op.NextBatch()
					if !ok {
						break
					}
					rows += int64(batch.NumRows())
				}
				b.ReportMetric(float64(rows), "outrows")
			}
		})
	}
}

// BenchmarkAttrValues measures the value-vector drain that feeds SIT
// creation.
func BenchmarkAttrValues(b *testing.B) {
	cat, e := benchPlanCatalog()
	for i := 0; i < b.N; i++ {
		vals, err := AttrValuesOpts(cat, e, "T3", "a", Options{Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(vals)), "vals")
	}
}
