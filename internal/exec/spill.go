package exec

import (
	"fmt"
	"io"

	"github.com/sitstats/sits/internal/mem"
)

// This file holds the pieces shared by the spill-capable operators: streaming
// cursors over run-store files and the loser-tree k-way merge that recombines
// spilled runs. The executor's Volcano interfaces carry no error channel, so
// spill I/O failures (disk full, torn file, checksum mismatch) surface as
// panics wrapping the underlying error; they are unrecoverable mid-plan.

// spillBatchRows is the row granularity of spilled batches: small enough
// that per-run streaming read buffers stay a few KiB, large enough to
// amortize the per-batch CRC and syscall cost.
const spillBatchRows = 1024

// spillFail aborts the plan on an unrecoverable spill I/O error.
func spillFail(context string, err error) {
	panic(fmt.Errorf("exec: spill %s: %w", context, err))
}

// colCursor streams a column-major sorted run row by row. cols holds the
// current batch; advancing past it pulls the next batch from the reader.
type colCursor struct {
	rd   *mem.RunReader
	cols [][]int64
	pos  int
	n    int
	done bool
}

func openColCursor(run *mem.Run) *colCursor {
	rd, err := run.Open()
	if err != nil {
		spillFail("open sorted run", err)
	}
	c := &colCursor{rd: rd}
	c.fill()
	return c
}

// fill loads the next batch, marking the cursor done (and closing the
// reader) at end of run.
func (c *colCursor) fill() {
	cols, err := c.rd.Next()
	if err == io.EOF {
		c.done = true
		if cerr := c.rd.Close(); cerr != nil {
			spillFail("close sorted run", cerr)
		}
		return
	}
	if err != nil {
		spillFail("read sorted run", err)
	}
	c.cols = cols
	c.pos = 0
	c.n = 0
	if len(cols) > 0 {
		c.n = len(cols[0])
	}
}

// advance steps one row forward.
//
//statcheck:hot
func (c *colCursor) advance() {
	c.pos++
	if c.pos >= c.n {
		c.fill()
	}
}

// rowCursor streams a flat row-major run (single-column run whose values are
// whole rows of a fixed stride). The first value of each row is its merge
// key (the probe sequence number for grace-join output runs).
type rowCursor struct {
	rd     *mem.RunReader
	buf    []int64
	pos    int // current row offset, in rows
	n      int // rows in buf
	stride int
	done   bool
}

func openRowCursor(run *mem.Run, stride int) *rowCursor {
	rd, err := run.Open()
	if err != nil {
		spillFail("open row run", err)
	}
	c := &rowCursor{rd: rd, stride: stride}
	c.fill()
	return c
}

func (c *rowCursor) fill() {
	cols, err := c.rd.Next()
	if err == io.EOF {
		c.done = true
		if cerr := c.rd.Close(); cerr != nil {
			spillFail("close row run", cerr)
		}
		return
	}
	if err != nil {
		spillFail("read row run", err)
	}
	c.buf = cols[0]
	if len(c.buf)%c.stride != 0 {
		spillFail("read row run", fmt.Errorf("chunk of %d values not a multiple of stride %d", len(c.buf), c.stride))
	}
	c.pos = 0
	c.n = len(c.buf) / c.stride
}

// row returns the current row; valid until the next advance.
//
//statcheck:hot
func (c *rowCursor) row() []int64 {
	off := c.pos * c.stride
	return c.buf[off : off+c.stride]
}

// key returns the current row's merge key (first value).
//
//statcheck:hot
func (c *rowCursor) key() int64 { return c.buf[c.pos*c.stride] }

//statcheck:hot
func (c *rowCursor) advance() {
	c.pos++
	if c.pos >= c.n {
		c.fill()
	}
}

// loserTree is a tournament tree over k merge cursors: the winner (smallest
// current key) is read in O(1) and replayed along a single leaf-to-root path
// in O(log k) after it advances — the classic structure for external merge
// because each replay does exactly one comparison per level, against the
// heap's two.
//
// The tree works on cursor indices through a caller-provided ordering, so
// the same structure merges sorted column runs (ordered by sort key, ties by
// run index for stability) and grace-join output runs (ordered by the unique
// probe sequence number). Indices >= n are padding leaves; less must order
// exhausted and padding cursors after every live one.
type loserTree struct {
	k    int     // leaf count, power of two
	tree []int32 // tree[0] = overall winner; tree[1..k-1] = losers
	less func(a, b int) bool
}

// newLoserTree builds the tree over n cursors. less(a, b) reports whether
// cursor a's current row merges before cursor b's; it is also called with
// padding indices in [n, nextPow2(n)).
func newLoserTree(n int, less func(a, b int) bool) *loserTree {
	k := nextPow2(n)
	if k < 1 {
		k = 1
	}
	lt := &loserTree{k: k, tree: make([]int32, k), less: less}
	if k == 1 {
		lt.tree[0] = 0
		return lt
	}
	// Play the initial tournament bottom-up: winners[j] is the winner of the
	// subtree rooted at node j (leaves are nodes k..2k-1, mapping to cursor
	// j-k); each internal node stores its loser.
	winners := make([]int32, 2*k)
	for i := 0; i < k; i++ {
		winners[k+i] = int32(i)
	}
	for j := k - 1; j >= 1; j-- {
		a, b := winners[2*j], winners[2*j+1]
		if less(int(a), int(b)) {
			winners[j] = a
			lt.tree[j] = b
		} else {
			winners[j] = b
			lt.tree[j] = a
		}
	}
	lt.tree[0] = winners[1]
	return lt
}

// winner returns the index of the cursor with the smallest current row.
//
//statcheck:hot
func (lt *loserTree) winner() int { return int(lt.tree[0]) }

// fix replays the tournament along the winner's leaf-to-root path after the
// winning cursor advanced (or finished).
//
//statcheck:hot
func (lt *loserTree) fix() {
	if lt.k == 1 {
		return
	}
	w := lt.tree[0]
	for j := (lt.k + int(w)) / 2; j >= 1; j /= 2 {
		if lt.less(int(lt.tree[j]), int(w)) {
			w, lt.tree[j] = lt.tree[j], w
		}
	}
	lt.tree[0] = w
}
