package exec

import (
	"github.com/sitstats/sits/internal/data"
)

// This file defines the vectorized half of the executor. Operators exchange
// fixed-size column-vector batches instead of single rows: a Batch holds one
// int64 slice per output column plus an optional selection vector, so scans
// serve table columns as sub-slices with no per-row copying, filters produce
// selection vectors instead of moving data, and joins emit their results
// column-wise. The pull-based row Operator interface remains available through
// the Rows adapter for callers (and tests) that want rows.

// DefaultBatchSize is the number of rows per batch. 1024 rows keep a handful
// of int64 columns resident in L1/L2 while amortizing per-batch dispatch.
const DefaultBatchSize = 1024

// MinBatchSize is the smallest batch size AdaptiveBatchSize will pick: below
// this, per-batch dispatch overhead dominates any cache-residency win.
const MinBatchSize = 64

// batchBytesTarget is the working-set budget AdaptiveBatchSize aims for: one
// batch of all columns should fit comfortably inside a 256 KiB+ L2 alongside
// the consumer's own state.
const batchBytesTarget = 128 << 10

// AdaptiveBatchSize picks a batch size from the number of int64 columns an
// operator emits, so wide join outputs stay inside L2 instead of streaming
// through it. Plans of up to 16 columns keep DefaultBatchSize (1024 rows x 16
// cols x 8 B = the 128 KiB target), so narrow pipelines are unaffected; wider
// outputs shrink to the next lower power of two, floored at MinBatchSize.
func AdaptiveBatchSize(ncols int) int {
	if ncols <= 0 {
		return DefaultBatchSize
	}
	rows := batchBytesTarget / (8 * ncols)
	if rows >= DefaultBatchSize {
		return DefaultBatchSize
	}
	if rows <= MinBatchSize {
		return MinBatchSize
	}
	// Round down to a power of two so batch boundaries stay cache-line and
	// chunk aligned.
	p := MinBatchSize
	for p*2 <= rows {
		p *= 2
	}
	return p
}

// Batch is a column-vector batch: Cols holds one value slice per output
// column, all of equal length. Sel, when non-nil, lists the active row
// indices in ascending order (rows not listed are filtered out); when nil,
// every row is active. Batches returned by NextBatch may reuse backing arrays
// across calls; consumers that retain values must copy them.
type Batch struct {
	Cols [][]int64
	Sel  []int32
}

// NumRows returns the number of active rows in the batch.
func (b *Batch) NumRows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	if len(b.Cols) == 0 {
		return 0
	}
	return len(b.Cols[0])
}

// BatchOperator is a pull-based batch iterator: the vectorized counterpart of
// Operator.
type BatchOperator interface {
	// Columns returns the qualified output column names.
	Columns() []string
	// NextBatch returns the next batch, or ok=false when exhausted. The
	// returned batch (including its backing arrays) may be reused by
	// subsequent calls.
	NextBatch() (*Batch, bool)
	// Reset rewinds the operator so it can be consumed again.
	Reset()
}

// BatchScan serves batches directly from a table's column storage: each batch
// column is a sub-slice of the table column (no copying at all).
type BatchScan struct {
	table *data.Table
	gen   uint64 // table generation when the column slices were bound
	cols  []string
	store [][]int64
	lo    int // first row served; non-zero only for morsel range scans
	n     int // one past the last row served
	pos   int
	size  int
	out   Batch
}

// NewBatchScan creates a batch scan over all columns of the table with an
// adaptive batch size, exposing columns qualified with the table's name.
func NewBatchScan(t *data.Table) *BatchScan { return NewBatchScanSize(t, 0) }

// NewBatchScanSize is NewBatchScan with an explicit batch size (0 = adaptive
// from the table's column count).
func NewBatchScanSize(t *data.Table, batchSize int) *BatchScan {
	if batchSize <= 0 {
		batchSize = AdaptiveBatchSize(t.NumCols())
	}
	names := t.ColumnNames()
	s := &BatchScan{
		table: t,
		gen:   t.Generation(),
		cols:  make([]string, len(names)),
		store: make([][]int64, len(names)),
		n:     t.NumRows(),
		size:  batchSize,
	}
	for i, n := range names {
		s.cols[i] = t.Name() + "." + n
		s.store[i] = t.MustColumn(n)
	}
	s.out.Cols = make([][]int64, len(names))
	return s
}

// Columns implements BatchOperator.
func (s *BatchScan) Columns() []string { return s.cols }

// NextBatch implements BatchOperator: the batch columns alias the table's
// backing storage and must not be modified.
func (s *BatchScan) NextBatch() (*Batch, bool) {
	if s.pos >= s.n {
		return nil, false
	}
	end := s.pos + s.size
	if end > s.n {
		end = s.n
	}
	for i := range s.store {
		s.out.Cols[i] = s.store[i][s.pos:end]
	}
	s.out.Sel = nil
	s.pos = end
	return &s.out, true
}

// Reset implements BatchOperator.
func (s *BatchScan) Reset() { s.pos = s.lo }

// NewBatchScanRange is NewBatchScanSize restricted to rows [lo, hi): the
// morsel source of the parallel Pipeline. Batch boundaries within the range
// fall at the same multiples of batchSize a whole-table scan starting at lo
// would produce, so morsel outputs concatenate to the serial stream.
func NewBatchScanRange(t *data.Table, lo, hi, batchSize int) *BatchScan {
	s := NewBatchScanSize(t, batchSize)
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo > hi {
		lo = hi
	}
	s.lo, s.pos, s.n = lo, lo, hi
	return s
}

// wholeTable reports whether the scan covers the table's full row range —
// the precondition for the sorted-run cache in BatchSort.
func (s *BatchScan) wholeTable() bool {
	return s.lo == 0 && s.table != nil && s.n == s.table.NumRows()
}

// BatchFilter evaluates a row predicate over each input batch and narrows the
// selection vector; column data is never moved.
type BatchFilter struct {
	in   BatchOperator
	pred func(cols [][]int64, r int) bool
	sel  []int32
	out  Batch
}

// NewBatchFilter wraps in with a predicate over the batch's physical row r.
func NewBatchFilter(in BatchOperator, pred func(cols [][]int64, r int) bool) *BatchFilter {
	return &BatchFilter{in: in, pred: pred}
}

// NewBatchRangeFilter filters rows to lo <= col <= hi.
func NewBatchRangeFilter(in BatchOperator, col string, lo, hi int64) (*BatchFilter, error) {
	idx, err := columnIndex(in.Columns(), col)
	if err != nil {
		return nil, err
	}
	return NewBatchFilter(in, func(cols [][]int64, r int) bool {
		v := cols[idx][r]
		return v >= lo && v <= hi
	}), nil
}

// Columns implements BatchOperator.
func (f *BatchFilter) Columns() []string { return f.in.Columns() }

// NextBatch implements BatchOperator: batches with no surviving rows are
// skipped, so returned batches are never empty.
func (f *BatchFilter) NextBatch() (*Batch, bool) {
	for {
		b, ok := f.in.NextBatch()
		if !ok {
			return nil, false
		}
		sel := f.sel[:0]
		if b.Sel != nil {
			for _, r := range b.Sel {
				if f.pred(b.Cols, int(r)) {
					sel = append(sel, r)
				}
			}
		} else {
			n := b.NumRows()
			for r := 0; r < n; r++ {
				if f.pred(b.Cols, r) {
					sel = append(sel, int32(r))
				}
			}
		}
		if len(sel) == 0 {
			continue
		}
		f.sel = sel
		f.out.Cols = b.Cols
		f.out.Sel = sel
		return &f.out, true
	}
}

// Reset implements BatchOperator.
func (f *BatchFilter) Reset() { f.in.Reset() }

// BatchProject narrows the output to a subset of columns by reordering the
// column slice headers; no values are copied.
type BatchProject struct {
	in   BatchOperator
	idx  []int
	cols []string
	out  Batch
}

// NewBatchProject projects in onto the named columns.
func NewBatchProject(in BatchOperator, cols ...string) (*BatchProject, error) {
	p := &BatchProject{in: in, cols: append([]string(nil), cols...)}
	for _, c := range cols {
		i, err := columnIndex(in.Columns(), c)
		if err != nil {
			return nil, err
		}
		p.idx = append(p.idx, i)
	}
	p.out.Cols = make([][]int64, len(cols))
	return p, nil
}

// Columns implements BatchOperator.
func (p *BatchProject) Columns() []string { return p.cols }

// NextBatch implements BatchOperator.
func (p *BatchProject) NextBatch() (*Batch, bool) {
	b, ok := p.in.NextBatch()
	if !ok {
		return nil, false
	}
	for i, j := range p.idx {
		p.out.Cols[i] = b.Cols[j]
	}
	p.out.Sel = b.Sel
	return &p.out, true
}

// Reset implements BatchOperator.
func (p *BatchProject) Reset() { p.in.Reset() }

// batchSource is implemented by row operators that are really thin views over
// a batch pipeline; batchify unwraps them instead of re-buffering rows.
type batchSource interface {
	batchSource() BatchOperator
}

// batchify converts a row operator into a batch operator without a buffering
// round-trip whenever possible: Rows views (including the Sort/MergeJoin row
// wrappers) unwrap to their underlying batch pipeline and table scans become
// zero-copy batch scans; only genuinely row-native operators pay for the
// Batches buffering adapter.
func batchify(op Operator) BatchOperator {
	switch o := op.(type) {
	case batchSource:
		return o.batchSource()
	case *TableScan:
		return NewBatchScan(o.table)
	default:
		return NewBatches(op)
	}
}

// Rows adapts a BatchOperator to the row Operator interface, preserving the
// batch pipeline's row order. It is the thin compatibility layer for callers
// that still want rows.
type Rows struct {
	in  BatchOperator
	cur *Batch
	pos int
	row []int64
}

// NewRows wraps a batch operator as a row operator.
func NewRows(in BatchOperator) *Rows {
	return &Rows{in: in, row: make([]int64, len(in.Columns()))}
}

// Columns implements Operator.
func (a *Rows) Columns() []string { return a.in.Columns() }

// batchSource exposes the underlying batch pipeline to batchify.
func (a *Rows) batchSource() BatchOperator { return a.in }

// Next implements Operator.
func (a *Rows) Next() ([]int64, bool) {
	for a.cur == nil || a.pos >= a.cur.NumRows() {
		b, ok := a.in.NextBatch()
		if !ok {
			return nil, false
		}
		a.cur, a.pos = b, 0
	}
	r := a.pos
	if a.cur.Sel != nil {
		r = int(a.cur.Sel[a.pos])
	}
	for i, c := range a.cur.Cols {
		a.row[i] = c[r]
	}
	a.pos++
	return a.row, true
}

// Reset implements Operator.
func (a *Rows) Reset() {
	a.in.Reset()
	a.cur, a.pos = nil, 0
}

// Batches adapts a row Operator to the batch interface by buffering rows
// column-wise, so row-only operators can feed a vectorized pipeline.
type Batches struct {
	in   Operator
	size int
	bufs [][]int64
	out  Batch
}

// NewBatches wraps a row operator as a batch operator with the default batch
// size.
func NewBatches(in Operator) *Batches { return NewBatchesSize(in, DefaultBatchSize) }

// NewBatchesSize is NewBatches with an explicit batch size.
func NewBatchesSize(in Operator, batchSize int) *Batches {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	nc := len(in.Columns())
	b := &Batches{in: in, size: batchSize, bufs: make([][]int64, nc)}
	for i := range b.bufs {
		b.bufs[i] = make([]int64, 0, batchSize)
	}
	b.out.Cols = make([][]int64, nc)
	return b
}

// Columns implements BatchOperator.
func (b *Batches) Columns() []string { return b.in.Columns() }

// NextBatch implements BatchOperator.
func (b *Batches) NextBatch() (*Batch, bool) {
	for i := range b.bufs {
		b.bufs[i] = b.bufs[i][:0]
	}
	n := 0
	for n < b.size {
		row, ok := b.in.Next()
		if !ok {
			break
		}
		for i, v := range row {
			b.bufs[i] = append(b.bufs[i], v)
		}
		n++
	}
	if n == 0 {
		return nil, false
	}
	copy(b.out.Cols, b.bufs)
	b.out.Sel = nil
	return &b.out, true
}

// Reset implements BatchOperator.
func (b *Batches) Reset() { b.in.Reset() }
