package exec

import (
	"sort"
	"testing"

	"github.com/sitstats/sits/internal/data"
)

// seedSort is the row-at-a-time Sort this PR replaced, preserved as the
// benchmark baseline: it drains the input into per-row slices and
// stable-sorts the row headers.
type seedSort struct {
	in     Operator
	idx    int
	sorted bool
	rows   [][]int64
	pos    int
}

func newSeedSort(in Operator, col string) (*seedSort, error) {
	idx, err := columnIndex(in.Columns(), col)
	if err != nil {
		return nil, err
	}
	return &seedSort{in: in, idx: idx}, nil
}

func (s *seedSort) Next() ([]int64, bool) {
	if !s.sorted {
		for {
			row, ok := s.in.Next()
			if !ok {
				break
			}
			cp := make([]int64, len(row))
			copy(cp, row)
			s.rows = append(s.rows, cp)
		}
		sort.SliceStable(s.rows, func(i, j int) bool { return s.rows[i][s.idx] < s.rows[j][s.idx] })
		s.sorted = true
	}
	if s.pos >= len(s.rows) {
		return nil, false
	}
	s.pos++
	return s.rows[s.pos-1], true
}

// seedMergeJoin is the row-at-a-time merge join this PR replaced, preserved
// as the benchmark baseline: per-row lookahead copies, left runs buffered as
// row slices, output assembled row by row.
type seedMergeJoin struct {
	left, right Operator
	lIdx, rIdx  int
	started     bool
	lrow, rrow  []int64
	run         [][]int64
	runKey      int64
	emit        int
	pairing     bool
	row         []int64
}

func newSeedMergeJoin(left, right Operator, leftCol, rightCol string) (*seedMergeJoin, error) {
	li, err := columnIndex(left.Columns(), leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := columnIndex(right.Columns(), rightCol)
	if err != nil {
		return nil, err
	}
	return &seedMergeJoin{
		left: left, right: right, lIdx: li, rIdx: ri,
		row: make([]int64, len(left.Columns())+len(right.Columns())),
	}, nil
}

func (j *seedMergeJoin) pullLeft() {
	if row, ok := j.left.Next(); ok {
		cp := make([]int64, len(row))
		copy(cp, row)
		j.lrow = cp
	} else {
		j.lrow = nil
	}
}

func (j *seedMergeJoin) pullRight() {
	if row, ok := j.right.Next(); ok {
		cp := make([]int64, len(row))
		copy(cp, row)
		j.rrow = cp
	} else {
		j.rrow = nil
	}
}

func (j *seedMergeJoin) Next() ([]int64, bool) {
	if !j.started {
		j.pullLeft()
		j.pullRight()
		j.started = true
	}
	for {
		if j.pairing {
			if j.emit < len(j.run) {
				l := j.run[j.emit]
				j.emit++
				copy(j.row, l)
				copy(j.row[len(l):], j.rrow)
				return j.row, true
			}
			j.pullRight()
			if j.rrow != nil && j.rrow[j.rIdx] == j.runKey {
				j.emit = 0
				continue
			}
			j.pairing = false
			j.run = j.run[:0]
			continue
		}
		if j.lrow == nil || j.rrow == nil {
			return nil, false
		}
		lk, rk := j.lrow[j.lIdx], j.rrow[j.rIdx]
		if lk < rk {
			j.pullLeft()
			continue
		}
		if lk > rk {
			j.pullRight()
			continue
		}
		j.runKey = lk
		for j.lrow != nil && j.lrow[j.lIdx] == lk {
			j.run = append(j.run, j.lrow)
			j.pullLeft()
		}
		j.emit = 0
		j.pairing = true
	}
}

// benchSortInput builds an unsorted 2-column table of n rows.
func benchSortInput(n int) *data.Table {
	r, _ := benchJoinInputs(n, 0, 1_000_000)
	return r
}

// benchSortedInputs builds two presorted join inputs; with the default sizing
// (200k x 200k over a 20k domain) the merge join emits ~2M rows.
func benchSortedInputs(nl, nr, domain int) (*data.Table, *data.Table) {
	r, s := benchJoinInputs(nl, nr, domain)
	sortTable := func(t *data.Table, name, key, pay string) *data.Table {
		keys, _ := t.Column(key)
		pays, _ := t.Column(pay)
		perm := make([]int, len(keys))
		for i := range perm {
			perm[i] = i
		}
		sort.SliceStable(perm, func(i, j int) bool { return keys[perm[i]] < keys[perm[j]] })
		out := data.MustNewTable(name, key, pay)
		out.Grow(len(perm))
		for _, p := range perm {
			out.AppendRow(keys[p], pays[p])
		}
		return out
	}
	return sortTable(r, "R", "x", "p"), sortTable(s, "S", "y", "q")
}

// BenchmarkSort measures sorting a 500k-row scan: the seed row sort
// (per-row slice allocation + stable sort over row headers) against the
// batch-native argsort + columnar gather.
func BenchmarkSort(b *testing.B) {
	tab := benchSortInput(500_000)
	b.Run("seed-rows", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := newSeedSort(NewTableScan(tab), "R.x")
			if err != nil {
				b.Fatal(err)
			}
			var rows, sum int64
			for {
				row, ok := s.Next()
				if !ok {
					break
				}
				rows++
				sum += row[0]
			}
			b.ReportMetric(float64(rows), "outrows")
			_ = sum
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := NewBatchSort(NewBatchScan(tab), "R.x")
			if err != nil {
				b.Fatal(err)
			}
			var rows, sum int64
			for {
				batch, ok := s.NextBatch()
				if !ok {
					break
				}
				rows += int64(batch.NumRows())
				sum += batch.Cols[0][0]
			}
			b.ReportMetric(float64(rows), "outrows")
			_ = sum
		}
	})
}

// BenchmarkMergeJoin measures a presorted equi-join producing ~2M rows: the
// seed row merge join against the batch-native run-pairing merge. The
// acceptance bar for this PR is batch/seed-rows >= 1.5x.
func BenchmarkMergeJoin(b *testing.B) {
	r, s := benchSortedInputs(200_000, 200_000, 20_000)
	b.Run("seed-rows", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j, err := newSeedMergeJoin(NewTableScan(r), NewTableScan(s), "R.x", "S.y")
			if err != nil {
				b.Fatal(err)
			}
			var rows int64
			for {
				if _, ok := j.Next(); !ok {
					break
				}
				rows++
			}
			b.ReportMetric(float64(rows), "outrows")
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j, err := NewBatchMergeJoin(NewBatchScan(r), NewBatchScan(s), "R.x", "S.y")
			if err != nil {
				b.Fatal(err)
			}
			var rows int64
			for {
				batch, ok := j.NextBatch()
				if !ok {
					break
				}
				rows += int64(batch.NumRows())
			}
			b.ReportMetric(float64(rows), "outrows")
		}
	})
}
