package exec

import (
	"reflect"
	"testing"
	"testing/quick"

	"github.com/sitstats/sits/internal/data"
)

func TestDistinct(t *testing.T) {
	tab := makeTable(t, "R", []string{"x", "y"}, [][]int64{
		{1, 1}, {1, 1}, {1, 2}, {2, 1}, {1, 1},
	})
	d := NewDistinct(NewTableScan(tab))
	rows := drain(t, d)
	sortRows(rows)
	want := [][]int64{{1, 1}, {1, 2}, {2, 1}}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("distinct = %v, want %v", rows, want)
	}
	d.Reset()
	if got := drain(t, d); len(got) != 3 {
		t.Errorf("after Reset: %d rows", len(got))
	}
}

func TestGroupCount(t *testing.T) {
	tab := makeTable(t, "R", []string{"x", "y"}, [][]int64{
		{1, 10}, {1, 20}, {2, 30}, {1, 40}, {2, 50},
	})
	g, err := NewGroupCount(NewTableScan(tab), "R.x")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Columns(), []string{"R.x", "count"}) {
		t.Errorf("columns = %v", g.Columns())
	}
	rows := drain(t, g)
	want := [][]int64{{1, 3}, {2, 2}}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("groups = %v, want %v", rows, want)
	}
	g.Reset()
	if got := drain(t, g); !reflect.DeepEqual(got, want) {
		t.Errorf("after Reset: %v", got)
	}
	if _, err := NewGroupCount(NewTableScan(tab)); err == nil {
		t.Error("no grouping columns: want error")
	}
	if _, err := NewGroupCount(NewTableScan(tab), "R.zz"); err == nil {
		t.Error("bad column: want error")
	}
}

func TestGroupCountMultiKey(t *testing.T) {
	tab := makeTable(t, "R", []string{"x", "y"}, [][]int64{
		{1, 1}, {1, 1}, {1, 2}, {2, 1},
	})
	g, err := NewGroupCount(NewTableScan(tab), "R.x", "R.y")
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, g)
	want := [][]int64{{1, 1, 2}, {1, 2, 1}, {2, 1, 1}}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("groups = %v, want %v", rows, want)
	}
}

// Property: GroupCount totals equal the input size, groups are distinct and
// sorted, and Distinct's output size equals the number of groups over the
// full row.
func TestAggregateQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		tab := data.MustNewTable("Q", "x")
		ref := map[int64]int64{}
		for _, v := range raw {
			x := int64(v % 16)
			tab.AppendRow(x)
			ref[x]++
		}
		g, err := NewGroupCount(NewTableScan(tab), "Q.x")
		if err != nil {
			return false
		}
		var total int64
		seen := map[int64]bool{}
		prev := int64(-1)
		for {
			row, ok := g.Next()
			if !ok {
				break
			}
			if row[0] <= prev || seen[row[0]] || row[1] != ref[row[0]] {
				return false
			}
			prev = row[0]
			seen[row[0]] = true
			total += row[1]
		}
		if total != int64(len(raw)) || len(seen) != len(ref) {
			return false
		}
		d := NewDistinct(NewTableScan(tab))
		n := 0
		for {
			if _, ok := d.Next(); !ok {
				break
			}
			n++
		}
		return n == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOperatorResets(t *testing.T) {
	tab := makeTable(t, "R", []string{"x", "a"}, [][]int64{{1, 10}, {2, 20}, {3, 30}})
	f, err := NewRangeFilter(NewTableScan(tab), "R.a", 15, 35)
	if err != nil {
		t.Fatal(err)
	}
	first := drain(t, f)
	f.Reset()
	second := drain(t, f)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("filter reset: %v vs %v", first, second)
	}
	p, err := NewProject(NewTableScan(tab), "R.a")
	if err != nil {
		t.Fatal(err)
	}
	drain(t, p)
	p.Reset()
	if got := drain(t, p); len(got) != 3 {
		t.Errorf("project reset: %v", got)
	}
	s, err := NewSort(NewTableScan(tab), "R.a")
	if err != nil {
		t.Fatal(err)
	}
	drain(t, s)
	s.Reset()
	if got := drain(t, s); len(got) != 3 {
		t.Errorf("sort reset: %v", got)
	}
	if _, err := NewSort(NewTableScan(tab), "bogus"); err == nil {
		t.Error("sort on bad column: want error")
	}
}
