// Package experiments contains the harnesses that regenerate every figure of
// the paper's evaluation (Section 5): Figure 7 (single-SIT accuracy across
// creation techniques and generating-query complexity), the uniform-data
// experiment described in Section 5.1's prose, and Figures 8-10 (multi-SIT
// scheduling cost and optimization time under varying numSITs, table counts
// and memory budgets). The harnesses are shared by cmd/sitbench and the
// repository's benchmark suite.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/sitstats/sits/internal/datagen"
	"github.com/sitstats/sits/internal/exec"
	"github.com/sitstats/sits/internal/mem"
	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sit"
	"github.com/sitstats/sits/internal/workload"
)

// Fig7Config parameterizes the single-SIT accuracy experiment of Section 5.1.
type Fig7Config struct {
	// Chain describes the synthetic database (Section 5.1: 4 tables,
	// 10k-100k tuples, skewed join attributes with z=1 for Figure 7).
	Chain datagen.ChainConfig
	// JoinWays lists the generating-query complexities; the paper uses
	// 2-, 3- and 4-way chain joins (Figures 7(a), 7(b), 7(c)).
	JoinWays []int
	// Buckets lists the histogram sizes swept on the x-axis.
	Buckets []int
	// Queries is the number of random range queries (the paper uses 1,000).
	Queries int
	// SampleRate is Sweep's sampling rate (the paper uses 10%).
	SampleRate float64
	// Methods lists the creation techniques to compare.
	Methods []sit.Method
	// Seed drives query generation and sampling.
	Seed int64
	// Parallelism bounds the harness's worker pool and the builders' shared
	// scans (0 = GOMAXPROCS, 1 = serial; serial runs reproduce the original
	// single-threaded results exactly). Cells are always assembled in
	// deterministic (way, buckets, method) order regardless of the setting.
	Parallelism int
	// BatchSize overrides the executor's rows-per-batch granularity (0 =
	// adaptive from each plan's column width).
	BatchSize int
	// MemBudget caps each builder's and ground-truth plan's operator memory
	// in bytes (0 = unlimited); under a budget joins and sorts spill, with
	// identical results.
	MemBudget int64
	// SpillRaw spills raw SRN1 runs instead of block-compressed SRN2 ones.
	// The zero value keeps the engine default (compressed).
	SpillRaw bool
}

// DefaultFig7Config returns the paper's setting, scaled to run in seconds.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		Chain:      datagen.DefaultChainConfig(),
		JoinWays:   []int{2, 3, 4},
		Buckets:    []int{20, 50, 100, 200},
		Queries:    1000,
		SampleRate: 0.10,
		Methods:    sit.Methods(),
		Seed:       7,
	}
}

// Fig7Cell is one measured point: a technique at a join width and bucket
// budget.
type Fig7Cell struct {
	Way     int
	Buckets int
	Method  sit.Method
	// Accuracy holds the relative-error aggregates over the random queries.
	Accuracy workload.Result
	// BuildTime is the wall-clock SIT creation time.
	BuildTime time.Duration
	// EstimatedCard / TrueCard compare creation-time cardinality knowledge.
	EstimatedCard float64
	TrueCard      float64
}

// Fig7Result is the full sweep.
type Fig7Result struct {
	Config Fig7Config
	Cells  []Fig7Cell
}

// chainSpec builds the SIT spec for a w-way chain join over the synthetic
// database: SIT(Tw.a | T1 join ... join Tw), with the SIT attribute on the
// last table as in Example 2.
func chainSpec(w int) (query.SITSpec, error) {
	if w < 2 {
		return query.SITSpec{}, fmt.Errorf("experiments: join width %d must be >= 2", w)
	}
	tables := make([]string, w)
	outs := make([]string, w-1)
	ins := make([]string, w-1)
	for i := 0; i < w; i++ {
		tables[i] = datagen.ChainTableName(i + 1)
	}
	for i := 0; i < w-1; i++ {
		outs[i] = "jnext"
		ins[i] = "jprev"
	}
	e, err := query.Chain(tables, outs, ins)
	if err != nil {
		return query.SITSpec{}, err
	}
	return query.NewSITSpec(tables[w-1], "a", e)
}

// fig7WayData is the per-join-width ground truth shared by that width's
// cells: the SIT spec, the materialized result distribution, and the filtered
// random range queries.
type fig7WayData struct {
	spec    query.SITSpec
	truth   *workload.Truth
	queries []workload.RangeQuery
}

// RunFigure7 executes the accuracy sweep. The per-width ground truths and the
// per-(width, buckets) cell groups run on a worker pool sized by
// cfg.Parallelism; each group gets a private builder, so no builder cache is
// shared across workers and the results are identical to a serial run of the
// same configuration.
func RunFigure7(cfg Fig7Config) (*Fig7Result, error) {
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("experiments: query count must be positive")
	}
	for _, w := range cfg.JoinWays {
		if w > cfg.Chain.Tables {
			return nil, fmt.Errorf("experiments: %d-way join exceeds the %d-table database", w, cfg.Chain.Tables)
		}
	}
	cat, err := datagen.ChainDB(cfg.Chain)
	if err != nil {
		return nil, err
	}
	ways := make([]fig7WayData, len(cfg.JoinWays))
	err = parallelFor(len(cfg.JoinWays), workerCount(cfg.Parallelism, len(cfg.JoinWays)), func(wi int) error {
		w := cfg.JoinWays[wi]
		spec, err := chainSpec(w)
		if err != nil {
			return err
		}
		gov := mem.NewGovernor(cfg.MemBudget)
		gov.SetSpillCompression(!cfg.SpillRaw)
		gov.SetSpillCompression(!cfg.SpillRaw)
		truthVals, err := exec.AttrValuesOpts(cat, spec.Expr, spec.Table, spec.Attr,
			exec.Options{Parallelism: cfg.Parallelism, BatchSize: cfg.BatchSize, Gov: gov})
		if cerr := gov.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		truth := workload.NewTruth(truthVals)
		lo, ok := truth.Min()
		if !ok {
			return fmt.Errorf("experiments: %d-way join result is empty", w)
		}
		hi, _ := truth.Max()
		rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
		// Keep queries whose true result is at least 0.05% of the join
		// result (floored at 10 tuples): zipfian join attributes concentrate
		// the result mass enormously, and ranges falling entirely into the
		// near-empty tail measure nothing but division by almost zero.
		minCount := int64(float64(truth.Len()) * 0.0005)
		if minCount < 10 {
			minCount = 10
		}
		queries, err := workload.FilteredRangeQueries(rng, lo, hi, cfg.Queries, minCount, truth)
		if err != nil {
			return err
		}
		ways[wi] = fig7WayData{spec: spec, truth: truth, queries: queries}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// One task per (way, buckets) pair; the methods inside a pair share one
	// builder (and its caches) and therefore run serially within the task.
	nb := len(cfg.Buckets)
	groups := make([][]Fig7Cell, len(cfg.JoinWays)*nb)
	err = parallelFor(len(groups), workerCount(cfg.Parallelism, len(groups)), func(gi int) error {
		wd := ways[gi/nb]
		buckets := cfg.Buckets[gi%nb]
		bcfg := sit.DefaultConfig()
		bcfg.Buckets = buckets
		bcfg.SampleRate = cfg.SampleRate
		// The tables are scaled ~10x below the paper's 10k-100k rows (see
		// DESIGN.md); flooring the reservoir keeps the absolute sample
		// sizes in the paper's regime so sampling noise is comparable.
		bcfg.MinSample = 500
		bcfg.Seed = cfg.Seed
		bcfg.Parallelism = cfg.Parallelism
		bcfg.BatchSize = cfg.BatchSize
		bcfg.MemBudget = cfg.MemBudget
		bcfg.SpillCompress = !cfg.SpillRaw
		builder, err := sit.NewBuilder(cat, bcfg)
		if err != nil {
			return err
		}
		cells := make([]Fig7Cell, 0, len(cfg.Methods))
		for _, m := range cfg.Methods {
			start := time.Now() //statcheck:ignore rawrand wall-clock timing column, not part of the result
			s, err := builder.Build(wd.spec, m)
			if err != nil {
				return fmt.Errorf("experiments: building %s with %v: %w", wd.spec.String(), m, err)
			}
			elapsed := time.Since(start) //statcheck:ignore rawrand wall-clock timing column, not part of the result
			acc, err := workload.Evaluate(s, wd.truth, wd.queries)
			if err != nil {
				return err
			}
			cells = append(cells, Fig7Cell{
				Way:           cfg.JoinWays[gi/nb],
				Buckets:       buckets,
				Method:        m,
				Accuracy:      acc,
				BuildTime:     elapsed,
				EstimatedCard: s.EstimatedCard,
				TrueCard:      float64(wd.truth.Len()),
			})
		}
		if err := builder.Close(); err != nil {
			return err
		}
		groups[gi] = cells
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Config: cfg}
	for _, cells := range groups {
		res.Cells = append(res.Cells, cells...)
	}
	return res, nil
}

// Cell returns the measured cell for (way, buckets, method), or ok=false.
func (r *Fig7Result) Cell(way, buckets int, m sit.Method) (Fig7Cell, bool) {
	for _, c := range r.Cells {
		if c.Way == way && c.Buckets == buckets && c.Method == m {
			return c, true
		}
	}
	return Fig7Cell{}, false
}

// UniformConfig returns the Figure 7 configuration altered for the prose
// experiment of Section 5.1: uniformly distributed, independent join
// attributes, under which every technique should be accurate (relative errors
// of a few percent, with the sampling-based techniques slightly worse).
// Uniform equi-joins shrink with the domain instead of exploding with skew,
// so this configuration uses larger tables and a tighter join domain than the
// skewed default to keep join results — and reservoir samples — big enough to
// measure sampling noise against.
func UniformConfig() Fig7Config {
	cfg := DefaultFig7Config()
	cfg.Chain.JoinZ = 0
	cfg.Chain.CorrelateSIT = false
	cfg.Chain.Rows = []int{4000, 3000, 2500, 2000}
	cfg.Chain.Domain = 400
	// A dense SIT-attribute domain keeps the true counts of narrow range
	// queries away from zero, so relative errors measure estimation quality
	// rather than the sparsity of the value domain.
	cfg.Chain.PayloadDomain = 500
	cfg.Buckets = []int{100}
	return cfg
}
