package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount maps a Parallelism knob (0 = GOMAXPROCS, 1 = serial, n = at
// most n workers) to an actual worker count for n tasks.
func workerCount(parallelism, n int) int {
	w := parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs fn(i) for every i in [0, n) on up to workers goroutines
// and returns the first error encountered. Tasks must be independent and
// write their results to distinct locations (typically index i of a
// pre-sized slice, which keeps the assembled output order deterministic
// regardless of scheduling). With workers <= 1 it degrades to a plain loop.
func parallelFor(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next int64
		wg   sync.WaitGroup
	)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
