package experiments

import (
	"github.com/sitstats/sits/internal/exec"
)

// workerCount maps a Parallelism knob (0 = GOMAXPROCS, 1 = serial, n = at
// most n workers) to an actual worker count for n tasks.
func workerCount(parallelism, n int) int {
	w := exec.ResolveParallelism(parallelism)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs fn(i) for every i in [0, n) as fork-join morsels on the
// shared exec pool, capped at `workers` concurrent claimers, and returns the
// first error encountered (by task index, so the reported error is
// deterministic). Tasks must be independent and write their results to
// distinct locations (typically index i of a pre-sized slice, which keeps
// the assembled output order deterministic regardless of scheduling). With
// workers <= 1 it degrades to a plain loop that stops at the first error.
func parallelFor(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	exec.Default().ForkJoinWidth(n, workers, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
