package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/sitstats/sits/internal/datagen"
	"github.com/sitstats/sits/internal/sched"
)

// SchedConfig parameterizes the multi-SIT scheduling experiments of Section
// 5.2. The paper's defaults: numSITs=10, lenSITs=5, nt=10 tables, sampling
// rate s=10%, combined table size 1,000,000 tuples (zipfian z=1 sizes),
// Cost(T) = |T|/1000, SampleSize(T) = s*|T|, M = 50,000, averaged over 100
// random instances.
type SchedConfig struct {
	NumSITs     int
	LenSITs     int
	NumTables   int
	TotalTuples int
	SampleRate  float64
	SizeZipf    float64
	Memory      float64
	// Instances is the number of random instances averaged per point.
	Instances int
	// HybridBudget is Hybrid's A* time budget (the paper uses one second).
	HybridBudget time.Duration
	// OptExpansionCap aborts pathological Opt searches (0 = unlimited).
	OptExpansionCap int
	// Parallelism bounds the worker pool solving the random instances of a
	// sweep point (0 = GOMAXPROCS, 1 = serial). Instances are always drawn
	// serially from one seeded stream and aggregated in instance order, so
	// the estimated costs are identical at every parallelism level; only the
	// measured optimization times become noisier under contention.
	Parallelism int
	Seed        int64
}

// DefaultSchedConfig returns the paper's defaults with a reduced instance
// count so the full sweep runs in seconds; cmd/sitbench can restore
// Instances=100.
func DefaultSchedConfig() SchedConfig {
	return SchedConfig{
		NumSITs:      10,
		LenSITs:      5,
		NumTables:    10,
		TotalTuples:  1000000,
		SampleRate:   0.10,
		SizeZipf:     1.0,
		Memory:       50000,
		Instances:    20,
		HybridBudget: time.Second,
		Seed:         11,
	}
}

// RandomInstance draws one scheduling instance: table sizes zipfian over the
// total, per-table costs |T|/1000 and sample sizes s*|T|, and NumSITs
// dependency sequences of length 2..LenSITs over distinct random tables.
func RandomInstance(rng *rand.Rand, cfg SchedConfig) ([]sched.Task, sched.Env, error) {
	if cfg.NumTables < 2 || cfg.LenSITs < 2 {
		return nil, sched.Env{}, fmt.Errorf("experiments: instance needs >= 2 tables and lenSITs >= 2")
	}
	sizes, err := datagen.ZipfSizes(cfg.TotalTuples, cfg.NumTables, cfg.SizeZipf)
	if err != nil {
		return nil, sched.Env{}, err
	}
	env := sched.Env{
		Cost:       map[string]float64{},
		SampleSize: map[string]float64{},
		Memory:     cfg.Memory,
	}
	tables := make([]string, cfg.NumTables)
	for i, size := range sizes {
		tables[i] = fmt.Sprintf("T%02d", i+1)
		cost := float64(size) / 1000
		if cost < 1 {
			cost = 1
		}
		ss := cfg.SampleRate * float64(size)
		if ss < 1 {
			ss = 1
		}
		env.Cost[tables[i]] = cost
		env.SampleSize[tables[i]] = ss
	}
	tasks := make([]sched.Task, cfg.NumSITs)
	for i := range tasks {
		maxLen := cfg.LenSITs
		if maxLen > cfg.NumTables {
			maxLen = cfg.NumTables
		}
		l := rng.Intn(maxLen-1) + 2
		perm := rng.Perm(cfg.NumTables)
		seq := make([]string, l)
		for j := 0; j < l; j++ {
			seq[j] = tables[perm[j]]
		}
		tasks[i] = sched.Task{ID: fmt.Sprintf("sit%02d", i+1), Seq: seq}
	}
	return tasks, env, nil
}

// MinFeasibleMemory returns the largest per-table sample size of an instance:
// the minimum memory budget under which any schedule exists (the lower end of
// Figure 10's sweep).
func MinFeasibleMemory(env sched.Env) float64 {
	maxSS := 0.0
	for _, ss := range env.SampleSize {
		if ss > maxSS {
			maxSS = ss
		}
	}
	return maxSS
}

// TechName identifies a scheduling technique in results.
type TechName string

// The techniques compared in Section 5.2.
const (
	TechNaive  TechName = "Naive"
	TechOpt    TechName = "Opt"
	TechGreedy TechName = "Greedy"
	TechHybrid TechName = "Hybrid"
)

// AllTechniques lists the techniques in the paper's order.
func AllTechniques() []TechName {
	return []TechName{TechNaive, TechOpt, TechGreedy, TechHybrid}
}

// TechPoint aggregates one technique at one sweep point.
type TechPoint struct {
	// AvgCost is the mean estimated schedule cost over the instances.
	AvgCost float64
	// AvgOptTime is the mean optimization (solver) time.
	AvgOptTime time.Duration
	// Failures counts instances the technique could not solve (expansion cap).
	Failures int
}

// SweepPoint is one x-axis position of a scheduling sweep.
type SweepPoint struct {
	X          float64
	Techniques map[TechName]TechPoint
}

// SchedSweep runs the techniques over random instances at each x value,
// mutating the base config through vary.
func SchedSweep(base SchedConfig, xs []float64, vary func(*SchedConfig, float64), techs []TechName) ([]SweepPoint, error) {
	if len(techs) == 0 {
		techs = AllTechniques()
	}
	var out []SweepPoint
	for _, x := range xs {
		cfg := base
		vary(&cfg, x)
		// Draw every instance up front from the single seeded stream (the
		// exact sequence a serial run sees), then solve the instances on the
		// worker pool and reduce in instance order.
		type instance struct {
			tasks []sched.Task
			env   sched.Env
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		insts := make([]instance, cfg.Instances)
		for i := range insts {
			tasks, env, err := RandomInstance(rng, cfg)
			if err != nil {
				return nil, err
			}
			insts[i] = instance{tasks: tasks, env: env}
		}
		type techOutcome struct {
			cost    float64
			elapsed time.Duration
			failed  bool
		}
		results := make([]map[TechName]techOutcome, cfg.Instances)
		err := parallelFor(cfg.Instances, workerCount(cfg.Parallelism, cfg.Instances), func(i int) error {
			r := make(map[TechName]techOutcome, len(techs))
			for _, tn := range techs {
				cost, elapsed, err := runTechnique(tn, insts[i].tasks, insts[i].env, cfg)
				if err != nil {
					r[tn] = techOutcome{failed: true}
					continue
				}
				r[tn] = techOutcome{cost: cost, elapsed: elapsed}
			}
			results[i] = r
			return nil
		})
		if err != nil {
			return nil, err
		}
		point := SweepPoint{X: x, Techniques: map[TechName]TechPoint{}}
		for _, tn := range techs {
			s := TechPoint{}
			for _, r := range results {
				o := r[tn]
				if o.failed {
					s.Failures++
					continue
				}
				s.AvgCost += o.cost
				s.AvgOptTime += o.elapsed
			}
			if n := cfg.Instances - s.Failures; n > 0 {
				s.AvgCost /= float64(n)
				s.AvgOptTime /= time.Duration(n)
			}
			point.Techniques[tn] = s
		}
		out = append(out, point)
	}
	return out, nil
}

func runTechnique(tn TechName, tasks []sched.Task, env sched.Env, cfg SchedConfig) (float64, time.Duration, error) {
	start := time.Now() //statcheck:ignore rawrand wall-clock timing column, not part of the result
	var (
		s   sched.Schedule
		err error
	)
	switch tn {
	case TechNaive:
		s, err = sched.Naive(tasks, env)
	case TechOpt:
		s, _, err = sched.OptWith(tasks, env, sched.Options{MaxExpansions: cfg.OptExpansionCap})
	case TechGreedy:
		s, _, err = sched.Greedy(tasks, env)
	case TechHybrid:
		s, _, err = sched.Hybrid(tasks, env, cfg.HybridBudget)
	default:
		return 0, 0, fmt.Errorf("experiments: unknown technique %q", tn)
	}
	elapsed := time.Since(start) //statcheck:ignore rawrand wall-clock timing column, not part of the result
	if err != nil {
		return 0, 0, err
	}
	if verr := sched.Validate(s, tasks, env); verr != nil {
		return 0, 0, fmt.Errorf("experiments: %s produced an invalid schedule: %w", tn, verr)
	}
	return s.Cost, elapsed, nil
}

// RunFigure8 sweeps the number of SITs (Figure 8: estimated cost and
// optimization time vs numSITs).
func RunFigure8(base SchedConfig, numSITs []int) ([]SweepPoint, error) {
	xs := make([]float64, len(numSITs))
	for i, n := range numSITs {
		xs[i] = float64(n)
	}
	return SchedSweep(base, xs, func(c *SchedConfig, x float64) { c.NumSITs = int(x) }, nil)
}

// RunFigure9 sweeps the number of tables (Figure 9: as nt grows, SIT overlap
// vanishes and all techniques converge to Naive).
func RunFigure9(base SchedConfig, numTables []int) ([]SweepPoint, error) {
	xs := make([]float64, len(numTables))
	for i, n := range numTables {
		xs[i] = float64(n)
	}
	return SchedSweep(base, xs, func(c *SchedConfig, x float64) { c.NumTables = int(x) }, nil)
}

// RunFigure10 sweeps the memory budget (Figure 10: Naive is flat, the others
// improve until the unbounded-memory schedule is reached).
func RunFigure10(base SchedConfig, memories []float64) ([]SweepPoint, error) {
	return SchedSweep(base, memories, func(c *SchedConfig, x float64) { c.Memory = x }, nil)
}
