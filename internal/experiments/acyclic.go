package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"github.com/sitstats/sits/internal/datagen"
	"github.com/sitstats/sits/internal/exec"
	"github.com/sitstats/sits/internal/mem"
	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sit"
	"github.com/sitstats/sits/internal/workload"
)

// AcyclicConfig parameterizes the acyclic-query accuracy experiment — an
// extension of Figure 7 to the tree-shaped generating queries of Section 3.2
// (the paper evaluates chains only; this exercises the post-order join-tree
// construction with branching and a snowflaked dimension).
type AcyclicConfig struct {
	Star    datagen.StarConfig
	Buckets int
	Queries int
	Methods []sit.Method
	Seed    int64
	// Parallelism bounds the worker pool over the creation techniques and the
	// builders' shared scans (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// BatchSize overrides the executor's rows-per-batch granularity (0 =
	// adaptive from each plan's column width).
	BatchSize int
	// MemBudget caps each builder's and ground-truth plan's operator memory
	// in bytes (0 = unlimited).
	MemBudget int64
	// SpillRaw spills raw SRN1 runs instead of block-compressed SRN2 ones.
	// The zero value keeps the engine default (compressed).
	SpillRaw bool
}

// DefaultAcyclicConfig returns the default snowflake experiment.
func DefaultAcyclicConfig() AcyclicConfig {
	return AcyclicConfig{
		Star:    datagen.DefaultStarConfig(),
		Buckets: 100,
		Queries: 1000,
		Methods: sit.Methods(),
		Seed:    19,
	}
}

// AcyclicCell is one measured technique.
type AcyclicCell struct {
	Method        sit.Method
	Accuracy      workload.Result
	BuildTime     time.Duration
	EstimatedCard float64
	TrueCard      float64
}

// RunAcyclic builds SIT(F.a | F ⋈ D1 (⋈ E) ⋈ D2) with every technique and
// scores it against the materialized ground truth.
func RunAcyclic(cfg AcyclicConfig) ([]AcyclicCell, error) {
	cat, err := datagen.StarDB(cfg.Star)
	if err != nil {
		return nil, err
	}
	preds := []query.JoinPred{
		{LeftTable: "F", LeftAttr: "k1", RightTable: "D1", RightAttr: "id"},
		{LeftTable: "F", LeftAttr: "k2", RightTable: "D2", RightAttr: "id"},
	}
	if cfg.Star.SubDimRows > 0 {
		preds = append(preds, query.JoinPred{LeftTable: "D1", LeftAttr: "e", RightTable: "E", RightAttr: "id"})
	}
	expr, err := query.NewExpr(preds...)
	if err != nil {
		return nil, err
	}
	spec, err := query.NewSITSpec("F", "a", expr)
	if err != nil {
		return nil, err
	}
	gov := mem.NewGovernor(cfg.MemBudget)
	gov.SetSpillCompression(!cfg.SpillRaw)
	truthVals, err := exec.AttrValuesOpts(cat, expr, "F", "a",
		exec.Options{Parallelism: cfg.Parallelism, BatchSize: cfg.BatchSize, Gov: gov})
	if cerr := gov.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	truth := workload.NewTruth(truthVals)
	lo, ok := truth.Min()
	if !ok {
		return nil, fmt.Errorf("experiments: snowflake join result is empty")
	}
	hi, _ := truth.Max()
	rng := rand.New(rand.NewSource(cfg.Seed))
	minCount := int64(float64(truth.Len()) * 0.0005)
	if minCount < 10 {
		minCount = 10
	}
	queries, err := workload.FilteredRangeQueries(rng, lo, hi, cfg.Queries, minCount, truth)
	if err != nil {
		return nil, err
	}
	// Each technique gets a private builder, so the cells are independent and
	// run on the worker pool; results land at their index.
	out := make([]AcyclicCell, len(cfg.Methods))
	err = parallelFor(len(cfg.Methods), workerCount(cfg.Parallelism, len(cfg.Methods)), func(i int) error {
		m := cfg.Methods[i]
		bcfg := sit.DefaultConfig()
		bcfg.Buckets = cfg.Buckets
		bcfg.Seed = cfg.Seed
		bcfg.Parallelism = cfg.Parallelism
		bcfg.BatchSize = cfg.BatchSize
		bcfg.MemBudget = cfg.MemBudget
		bcfg.SpillCompress = !cfg.SpillRaw
		builder, err := sit.NewBuilder(cat, bcfg)
		if err != nil {
			return err
		}
		start := time.Now() //statcheck:ignore rawrand wall-clock timing column, not part of the result
		s, err := builder.Build(spec, m)
		if err != nil {
			return fmt.Errorf("experiments: acyclic %v: %w", m, err)
		}
		elapsed := time.Since(start) //statcheck:ignore rawrand wall-clock timing column, not part of the result
		acc, err := workload.Evaluate(s, truth, queries)
		if err != nil {
			return err
		}
		out[i] = AcyclicCell{
			Method: m, Accuracy: acc, BuildTime: elapsed,
			EstimatedCard: s.EstimatedCard, TrueCard: float64(truth.Len()),
		}
		return builder.Close()
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PrintAcyclic renders the experiment as a table.
func PrintAcyclic(w io.Writer, cfg AcyclicConfig, cells []AcyclicCell) error {
	fmt.Fprintf(w, "\nAcyclic (snowflake) generating query — SIT(F.a | F ⋈ D1 (⋈ E) ⋈ D2), nb=%d, %d range queries\n",
		cfg.Buckets, cfg.Queries)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "technique\tmedian err %\tmean err %\tcard est\ttrue card\tbuild time")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.0f\t%.0f\t%v\n",
			c.Method, 100*c.Accuracy.MedianRelError, 100*c.Accuracy.AvgRelError,
			c.EstimatedCard, c.TrueCard, c.BuildTime.Round(100*time.Microsecond))
	}
	return tw.Flush()
}
