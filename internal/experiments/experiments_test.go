package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/sitstats/sits/internal/sit"
)

// smallFig7Config shrinks the paper's setting so the test runs in seconds
// while preserving the qualitative shapes.
func smallFig7Config() Fig7Config {
	cfg := DefaultFig7Config()
	cfg.Chain.Rows = []int{500, 400, 300, 300}
	cfg.Chain.Domain = 1500
	cfg.Buckets = []int{50, 100}
	cfg.Queries = 300
	return cfg
}

func TestFigure7Shapes(t *testing.T) {
	res, err := RunFigure7(smallFig7Config())
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(res.Config.JoinWays) * len(res.Config.Buckets) * len(res.Config.Methods)
	if len(res.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(res.Cells), wantCells)
	}
	for _, way := range []int{3, 4} {
		for _, nb := range res.Config.Buckets {
			hist, ok1 := res.Cell(way, nb, sit.HistSIT)
			sweep, ok2 := res.Cell(way, nb, sit.Sweep)
			exact, ok3 := res.Cell(way, nb, sit.SweepExact)
			if !ok1 || !ok2 || !ok3 {
				t.Fatalf("missing cells for way=%d nb=%d", way, nb)
			}
			// The paper's headline: Hist-SIT is much worse than the Sweep
			// family under skewed, correlated join attributes.
			if hist.Accuracy.AvgRelError <= sweep.Accuracy.AvgRelError {
				t.Errorf("way=%d nb=%d: Hist-SIT (%.3f) should be worse than Sweep (%.3f)",
					way, nb, hist.Accuracy.AvgRelError, sweep.Accuracy.AvgRelError)
			}
			if hist.Accuracy.AvgRelError <= exact.Accuracy.AvgRelError {
				t.Errorf("way=%d nb=%d: Hist-SIT (%.3f) should be worse than SweepExact (%.3f)",
					way, nb, hist.Accuracy.AvgRelError, exact.Accuracy.AvgRelError)
			}
			// SweepExact knows the exact cardinality.
			if exact.EstimatedCard != exact.TrueCard {
				t.Errorf("way=%d nb=%d: SweepExact card %v != true %v",
					way, nb, exact.EstimatedCard, exact.TrueCard)
			}
		}
	}
	// Error grows with join width for Hist-SIT (error propagation through
	// more joins).
	h2, _ := res.Cell(2, 100, sit.HistSIT)
	h4, _ := res.Cell(4, 100, sit.HistSIT)
	if h4.Accuracy.AvgRelError <= h2.Accuracy.AvgRelError {
		t.Errorf("Hist-SIT error should grow with join width: 2-way %.3f vs 4-way %.3f",
			h2.Accuracy.AvgRelError, h4.Accuracy.AvgRelError)
	}
	var buf bytes.Buffer
	if err := PrintFigure7(&buf, res, "Figure 7"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Hist-SIT") || !strings.Contains(buf.String(), "4-way") {
		t.Errorf("printed output incomplete:\n%s", buf.String())
	}
	if err := PrintFigure7BuildTimes(&buf, res); err != nil {
		t.Fatal(err)
	}
}

func TestUniformExperiment(t *testing.T) {
	cfg := UniformConfig()
	cfg.Queries = 300
	cfg.JoinWays = []int{2, 3}
	res, err := RunFigure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Independence holds: every technique should be accurate (the paper
	// reports < 2% on its larger tables; allow slack for the scaled-down
	// data set, where narrow range queries have small true counts and the
	// chain techniques sample twice). Medians are tighter than means because
	// the residual error concentrates in a few narrow queries.
	for _, c := range res.Cells {
		if c.Accuracy.AvgRelError > 0.20 {
			t.Errorf("way=%d %v: uniform-data avg error %.3f too large", c.Way, c.Method, c.Accuracy.AvgRelError)
		}
		if c.Accuracy.MedianRelError > 0.10 {
			t.Errorf("way=%d %v: uniform-data median error %.3f too large", c.Way, c.Method, c.Accuracy.MedianRelError)
		}
	}
	// The sampling-based techniques pay a small accuracy price relative to
	// the exact ones (the paper's "around 2% versus 1%").
	for _, way := range cfg.JoinWays {
		sweep, _ := res.Cell(way, 100, sit.Sweep)
		exact, _ := res.Cell(way, 100, sit.SweepExact)
		if sweep.Accuracy.AvgRelError < exact.Accuracy.AvgRelError {
			t.Logf("way=%d: Sweep (%.4f) happened to beat SweepExact (%.4f) on this seed",
				way, sweep.Accuracy.AvgRelError, exact.Accuracy.AvgRelError)
		}
	}
}

func TestFig7ConfigValidation(t *testing.T) {
	cfg := smallFig7Config()
	cfg.Queries = 0
	if _, err := RunFigure7(cfg); err == nil {
		t.Error("zero queries: want error")
	}
	cfg = smallFig7Config()
	cfg.JoinWays = []int{9}
	if _, err := RunFigure7(cfg); err == nil {
		t.Error("join width beyond table count: want error")
	}
	if _, err := chainSpec(1); err == nil {
		t.Error("1-way chain: want error")
	}
}

func TestRandomInstanceShape(t *testing.T) {
	cfg := DefaultSchedConfig()
	rng := rand.New(rand.NewSource(1))
	tasks, env, err := RandomInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != cfg.NumSITs {
		t.Fatalf("tasks = %d", len(tasks))
	}
	totalCost := 0.0
	for _, c := range env.Cost {
		totalCost += c
	}
	// Cost(T) = |T|/1000 and sizes sum to one million: total ~1000 units.
	if totalCost < 900 || totalCost > 1100 {
		t.Errorf("sum of costs = %v, want ~1000", totalCost)
	}
	for _, task := range tasks {
		if len(task.Seq) < 2 || len(task.Seq) > cfg.LenSITs {
			t.Errorf("task %q length %d out of [2,%d]", task.ID, len(task.Seq), cfg.LenSITs)
		}
		seen := map[string]bool{}
		for _, tab := range task.Seq {
			if seen[tab] {
				t.Errorf("task %q repeats table %q", task.ID, tab)
			}
			seen[tab] = true
		}
	}
	if MinFeasibleMemory(env) >= cfg.Memory {
		t.Errorf("default memory %v should exceed the largest sample %v", cfg.Memory, MinFeasibleMemory(env))
	}
	bad := cfg
	bad.NumTables = 1
	if _, _, err := RandomInstance(rng, bad); err == nil {
		t.Error("one table: want error")
	}
}

func TestFigure8Shape(t *testing.T) {
	cfg := DefaultSchedConfig()
	cfg.Instances = 8
	cfg.HybridBudget = 200 * time.Millisecond
	points, err := RunFigure8(cfg, []int{4, 8, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		naive := p.Techniques[TechNaive]
		opt := p.Techniques[TechOpt]
		greedy := p.Techniques[TechGreedy]
		hybrid := p.Techniques[TechHybrid]
		if opt.Failures > 0 {
			t.Fatalf("numSITs=%g: Opt failed on %d instances", p.X, opt.Failures)
		}
		if naive.AvgCost < opt.AvgCost-1e-6 {
			t.Errorf("numSITs=%g: Naive (%v) cheaper than Opt (%v)?", p.X, naive.AvgCost, opt.AvgCost)
		}
		if greedy.AvgCost < opt.AvgCost-1e-6 {
			t.Errorf("numSITs=%g: Greedy (%v) beat Opt (%v)?", p.X, greedy.AvgCost, opt.AvgCost)
		}
		if hybrid.AvgCost < opt.AvgCost-1e-6 {
			t.Errorf("numSITs=%g: Hybrid (%v) beat Opt (%v)?", p.X, hybrid.AvgCost, opt.AvgCost)
		}
		// Sharing must actually pay off at the paper's overlap levels.
		if naive.AvgCost <= opt.AvgCost {
			t.Errorf("numSITs=%g: no sharing benefit (Naive %v vs Opt %v)", p.X, naive.AvgCost, opt.AvgCost)
		}
	}
	var buf bytes.Buffer
	if err := PrintSchedSweep(&buf, points, "numSITs", "Figure 8"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Greedy") {
		t.Errorf("printed output incomplete:\n%s", buf.String())
	}
}

func TestFigure9Shape(t *testing.T) {
	cfg := DefaultSchedConfig()
	cfg.Instances = 8
	cfg.HybridBudget = 200 * time.Millisecond
	points, err := RunFigure9(cfg, []int{5, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	// Sharing benefit (Naive/Opt ratio) should shrink as tables grow and
	// overlap vanishes.
	ratio := func(p SweepPoint) float64 {
		return p.Techniques[TechNaive].AvgCost / p.Techniques[TechOpt].AvgCost
	}
	if ratio(points[0]) <= ratio(points[len(points)-1]) {
		t.Errorf("sharing benefit should shrink with more tables: nt=5 ratio %.3f vs nt=40 ratio %.3f",
			ratio(points[0]), ratio(points[len(points)-1]))
	}
}

func TestFigure10Shape(t *testing.T) {
	cfg := DefaultSchedConfig()
	cfg.Instances = 8
	cfg.HybridBudget = 200 * time.Millisecond
	// Determine the feasibility floor for this configuration's (fixed) sizes.
	rng := rand.New(rand.NewSource(cfg.Seed))
	_, env, err := RandomInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	floor := MinFeasibleMemory(env)
	memories := []float64{floor * 1.05, floor * 2, floor * 4, floor * 10}
	points, err := RunFigure10(cfg, memories)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		prev := points[i-1].Techniques[TechOpt].AvgCost
		cur := points[i].Techniques[TechOpt].AvgCost
		if cur > prev+1e-6 {
			t.Errorf("Opt cost should not increase with memory: M=%g cost %v -> M=%g cost %v",
				points[i-1].X, prev, points[i].X, cur)
		}
		// Naive ignores memory entirely.
		if points[i].Techniques[TechNaive].AvgCost != points[0].Techniques[TechNaive].AvgCost {
			t.Errorf("Naive cost changed with memory")
		}
	}
	// With ample memory sharing must beat Naive.
	last := points[len(points)-1]
	if last.Techniques[TechNaive].AvgCost <= last.Techniques[TechOpt].AvgCost {
		t.Errorf("unbounded memory: Naive (%v) should exceed Opt (%v)",
			last.Techniques[TechNaive].AvgCost, last.Techniques[TechOpt].AvgCost)
	}
}

func TestUnknownTechnique(t *testing.T) {
	cfg := DefaultSchedConfig()
	cfg.Instances = 1
	_, err := SchedSweep(cfg, []float64{4},
		func(c *SchedConfig, x float64) { c.NumSITs = int(x) },
		[]TechName{TechName("Bogus")})
	if err != nil {
		t.Fatal(err)
	}
	// Unknown techniques surface as failures, not sweep-level errors.
}

func TestAcyclicExperiment(t *testing.T) {
	cfg := DefaultAcyclicConfig()
	cfg.Star.FactRows = 1500
	cfg.Star.DimRows = []int{400, 300}
	cfg.Star.SubDimRows = 80
	cfg.Queries = 300
	cells, err := RunAcyclic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(cfg.Methods) {
		t.Fatalf("cells = %d", len(cells))
	}
	var hist, exact AcyclicCell
	for _, c := range cells {
		if c.Method == sit.HistSIT {
			hist = c
		}
		if c.Method == sit.SweepExact {
			exact = c
		}
	}
	if exact.EstimatedCard != exact.TrueCard {
		t.Errorf("SweepExact card %v != true %v", exact.EstimatedCard, exact.TrueCard)
	}
	if hist.Accuracy.MedianRelError <= exact.Accuracy.MedianRelError {
		t.Errorf("Hist-SIT (%.3f) should be worse than SweepExact (%.3f) on correlated snowflake",
			hist.Accuracy.MedianRelError, exact.Accuracy.MedianRelError)
	}
	var buf bytes.Buffer
	if err := PrintAcyclic(&buf, cfg, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SweepExact") {
		t.Error("print output incomplete")
	}
}

func TestHistogramAblation(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.Chain.Rows = []int{500, 400, 300, 300}
	cfg.Chain.Domain = 1500
	cfg.Queries = 200
	cells, err := RunHistogramAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(cfg.HistMethods) {
		t.Fatalf("cells = %d", len(cells))
	}
	byMethod := map[string]AblationCell{}
	for _, c := range cells {
		byMethod[c.HistMethod.String()] = c
	}
	// V-Optimal must not lose to equi-width (the weakest construction).
	if byMethod["v-optimal"].Accuracy.MedianRelError > byMethod["equiwidth"].Accuracy.MedianRelError {
		t.Errorf("v-optimal (%.3f) worse than equiwidth (%.3f)?",
			byMethod["v-optimal"].Accuracy.MedianRelError, byMethod["equiwidth"].Accuracy.MedianRelError)
	}
	var buf bytes.Buffer
	if err := PrintHistogramAblation(&buf, cfg, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "v-optimal") {
		t.Error("print output incomplete")
	}
}
