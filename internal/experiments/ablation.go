package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"github.com/sitstats/sits/internal/datagen"
	"github.com/sitstats/sits/internal/exec"
	"github.com/sitstats/sits/internal/histogram"
	"github.com/sitstats/sits/internal/mem"
	"github.com/sitstats/sits/internal/sit"
	"github.com/sitstats/sits/internal/workload"
)

// AblationConfig parameterizes the histogram-construction ablation: the same
// Figure 7 setting (one join width, one creation technique) measured across
// histogram construction algorithms, including the V-Optimal gold standard.
type AblationConfig struct {
	Chain       datagen.ChainConfig
	JoinWay     int
	Buckets     int
	Queries     int
	Method      sit.Method
	HistMethods []histogram.Method
	Seed        int64
	// Parallelism bounds the worker pool over the construction algorithms and
	// the builders' shared scans (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// BatchSize overrides the executor's rows-per-batch granularity (0 =
	// adaptive from each plan's column width).
	BatchSize int
	// MemBudget caps each builder's and ground-truth plan's operator memory
	// in bytes (0 = unlimited).
	MemBudget int64
	// SpillRaw spills raw SRN1 runs instead of block-compressed SRN2 ones.
	// The zero value keeps the engine default (compressed).
	SpillRaw bool
}

// DefaultAblationConfig returns a 3-way-chain ablation of SweepFull across
// all five construction algorithms.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{
		Chain:   datagen.DefaultChainConfig(),
		JoinWay: 3,
		Buckets: 100,
		Queries: 1000,
		Method:  sit.SweepFull,
		HistMethods: []histogram.Method{
			histogram.MaxDiffArea, histogram.MaxDiffFreq,
			histogram.EquiDepth, histogram.EquiWidth, histogram.VOptimal,
		},
		Seed: 7,
	}
}

// AblationCell is one measured construction algorithm.
type AblationCell struct {
	HistMethod histogram.Method
	Accuracy   workload.Result
	BuildTime  time.Duration
}

// RunHistogramAblation measures SIT accuracy per histogram construction
// algorithm, everything else held fixed.
func RunHistogramAblation(cfg AblationConfig) ([]AblationCell, error) {
	cat, err := datagen.ChainDB(cfg.Chain)
	if err != nil {
		return nil, err
	}
	spec, err := chainSpec(cfg.JoinWay)
	if err != nil {
		return nil, err
	}
	gov := mem.NewGovernor(cfg.MemBudget)
	gov.SetSpillCompression(!cfg.SpillRaw)
	truthVals, err := exec.AttrValuesOpts(cat, spec.Expr, spec.Table, spec.Attr,
		exec.Options{Parallelism: cfg.Parallelism, BatchSize: cfg.BatchSize, Gov: gov})
	if cerr := gov.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	truth := workload.NewTruth(truthVals)
	lo, ok := truth.Min()
	if !ok {
		return nil, fmt.Errorf("experiments: empty join result")
	}
	hi, _ := truth.Max()
	rng := rand.New(rand.NewSource(cfg.Seed))
	minCount := int64(float64(truth.Len()) * 0.0005)
	if minCount < 10 {
		minCount = 10
	}
	queries, err := workload.FilteredRangeQueries(rng, lo, hi, cfg.Queries, minCount, truth)
	if err != nil {
		return nil, err
	}
	// Each construction algorithm gets a private builder, so the cells are
	// independent and run on the worker pool; results land at their index.
	out := make([]AblationCell, len(cfg.HistMethods))
	err = parallelFor(len(cfg.HistMethods), workerCount(cfg.Parallelism, len(cfg.HistMethods)), func(i int) error {
		hm := cfg.HistMethods[i]
		bcfg := sit.DefaultConfig()
		bcfg.Buckets = cfg.Buckets
		bcfg.HistMethod = hm
		bcfg.Seed = cfg.Seed
		bcfg.Parallelism = cfg.Parallelism
		bcfg.BatchSize = cfg.BatchSize
		bcfg.MemBudget = cfg.MemBudget
		bcfg.SpillCompress = !cfg.SpillRaw
		builder, err := sit.NewBuilder(cat, bcfg)
		if err != nil {
			return err
		}
		start := time.Now() //statcheck:ignore rawrand wall-clock timing column, not part of the result
		s, err := builder.Build(spec, cfg.Method)
		if err != nil {
			return fmt.Errorf("experiments: %v with %v: %w", cfg.Method, hm, err)
		}
		elapsed := time.Since(start) //statcheck:ignore rawrand wall-clock timing column, not part of the result
		acc, err := workload.Evaluate(s, truth, queries)
		if err != nil {
			return err
		}
		out[i] = AblationCell{HistMethod: hm, Accuracy: acc, BuildTime: elapsed}
		return builder.Close()
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PrintHistogramAblation renders the ablation as a table.
func PrintHistogramAblation(w io.Writer, cfg AblationConfig, cells []AblationCell) error {
	fmt.Fprintf(w, "\nHistogram-construction ablation — %d-way chain, %v, nb=%d (%d range queries)\n",
		cfg.JoinWay, cfg.Method, cfg.Buckets, cfg.Queries)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "construction\tmedian err %\tmean err %\tbuild time")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%v\n",
			c.HistMethod, 100*c.Accuracy.MedianRelError, 100*c.Accuracy.AvgRelError,
			c.BuildTime.Round(100*time.Microsecond))
	}
	return tw.Flush()
}
