package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// PrintFigure7 renders the accuracy sweep as two tables per join width,
// mirroring Figures 7(a)-(c): rows are histogram sizes, columns are
// techniques, cells are relative errors in percent. The median table is the
// headline (it tracks the paper's reported bands: Hist-SIT around 100-500%,
// the Sweep family well below); the mean table follows, where a handful of
// queries landing in the near-empty zipf tail can dominate.
func PrintFigure7(w io.Writer, r *Fig7Result, title string) error {
	metrics := []struct {
		name string
		get  func(Fig7Cell) float64
	}{
		{"median", func(c Fig7Cell) float64 { return c.Accuracy.MedianRelError }},
		{"mean", func(c Fig7Cell) float64 { return c.Accuracy.AvgRelError }},
	}
	for _, way := range r.Config.JoinWays {
		for _, metric := range metrics {
			fmt.Fprintf(w, "\n%s — %d-way chain join (%s relative error %% over %d range queries)\n",
				title, way, metric.name, r.Config.Queries)
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintf(tw, "buckets")
			for _, m := range r.Config.Methods {
				fmt.Fprintf(tw, "\t%s", m)
			}
			fmt.Fprintln(tw)
			for _, nb := range r.Config.Buckets {
				fmt.Fprintf(tw, "%d", nb)
				for _, m := range r.Config.Methods {
					c, ok := r.Cell(way, nb, m)
					if !ok {
						fmt.Fprintf(tw, "\t-")
						continue
					}
					fmt.Fprintf(tw, "\t%.1f", 100*metric.get(c))
				}
				fmt.Fprintln(tw)
			}
			if err := tw.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// PrintFigure7BuildTimes renders SIT creation times for the sweep's default
// bucket budget, a secondary axis the paper discusses qualitatively (Hist-SIT
// touches no data; SweepExact/Materialize are the most expensive).
func PrintFigure7BuildTimes(w io.Writer, r *Fig7Result) error {
	nb := r.Config.Buckets[len(r.Config.Buckets)/2]
	fmt.Fprintf(w, "\nSIT creation time (nb = %d)\n", nb)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "join ways")
	for _, m := range r.Config.Methods {
		fmt.Fprintf(tw, "\t%s", m)
	}
	fmt.Fprintln(tw)
	for _, way := range r.Config.JoinWays {
		fmt.Fprintf(tw, "%d", way)
		for _, m := range r.Config.Methods {
			c, ok := r.Cell(way, nb, m)
			if !ok {
				fmt.Fprintf(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%v", c.BuildTime.Round(100*1000)) // 100µs
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// PrintSchedSweep renders a scheduling sweep as two tables (estimated
// schedule cost and optimization time), mirroring Figures 8(a)/8(b), 9, 10.
func PrintSchedSweep(w io.Writer, points []SweepPoint, xLabel, title string) error {
	techs := AllTechniques()
	fmt.Fprintf(w, "\n%s — average estimated schedule cost\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", xLabel)
	for _, t := range techs {
		fmt.Fprintf(tw, "\t%s", t)
	}
	fmt.Fprintln(tw)
	for _, p := range points {
		fmt.Fprintf(tw, "%g", p.X)
		for _, t := range techs {
			tp, ok := p.Techniques[t]
			if !ok {
				fmt.Fprintf(tw, "\t-")
				continue
			}
			if tp.Failures > 0 {
				fmt.Fprintf(tw, "\t%.0f(!%d)", tp.AvgCost, tp.Failures)
			} else {
				fmt.Fprintf(tw, "\t%.0f", tp.AvgCost)
			}
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s — average optimization time\n", title)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", xLabel)
	for _, t := range techs {
		fmt.Fprintf(tw, "\t%s", t)
	}
	fmt.Fprintln(tw)
	for _, p := range points {
		fmt.Fprintf(tw, "%g", p.X)
		for _, t := range techs {
			tp, ok := p.Techniques[t]
			if !ok {
				fmt.Fprintf(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%v", tp.AvgOptTime.Round(10000)) // 10µs
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
