module github.com/sitstats/sits

go 1.22
